"""One-stop telemetry for a whole run.

A :class:`TelemetrySession` bundles the four telemetry surfaces — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, an (optional)
:class:`~repro.obs.autograd.AutogradProfiler` and a
:class:`~repro.obs.callbacks.TelemetryCallback` — activates them all for
the enclosed block, and renders a combined run report afterwards.  This
is what the CLI's ``--telemetry <path>`` flag drives:

>>> from repro.obs import TelemetrySession
>>> with TelemetrySession(profile_autograd=False) as session:
...     session.registry.counter("demo.work").inc()
>>> "demo.work" in session.registry
True

The JSONL report is one JSON object per line, discriminated by ``type``:
``meta``, ``epoch``, ``counter``, ``gauge``, ``histogram``,
``autograd_op``, ``span`` and — when a quality monitor is attached —
``quality``, ``drift``, ``coldstart``, ``monitor_sample`` and ``alert``;
with an SLO tracker also ``slo``, and with a flight recorder ``request``
(see ``docs/observability.md``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Union

from repro.obs.agg import TelemetryShipper
from repro.obs.autograd import AutogradProfiler
from repro.obs.callbacks import (
    TelemetryCallback,
    register_global_callback,
    unregister_global_callback,
)
from repro.obs.context import (
    get_shard_label,
    register_request_observer,
    set_shard_label,
    unregister_request_observer,
)
from repro.obs.flight import FlightRecorder, use_flight_recorder
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.quality import QualityMonitor, use_monitor
from repro.obs.slo import SLOTracker, use_slo_tracker
from repro.obs.tracing import Tracer, use_tracer

__all__ = ["TelemetrySession"]

_LOGGER = get_logger("obs.session")

# Pre-registered names so run reports always carry the serving-path and
# trainer-stability counters, even when a run never exercised them.
_STANDARD_COUNTERS = (
    "engine.refreshes",
    "engine.cold_path_items",
    "engine.warm_path_items",
    "engine.events_ingested",
    "store.events_ingested",
    "trainer.batches",
    "trainer.divergence_warning",
    "alerts.fired",
)


class TelemetrySession:
    """Activates registry + tracer + profiler + trainer callback together.

    Parameters
    ----------
    registry:
        Use an existing registry instead of a fresh one.
    profile_autograd:
        Attach the per-op autograd profiler (small per-op overhead while
        the session is open; out-of-session code is never affected).
    label:
        Free-form run label recorded in the report's ``meta`` line.
    monitor:
        Attach a model-quality monitor (see
        :class:`~repro.obs.quality.QualityMonitor`): ``True`` builds one
        with defaults, or pass a configured instance.  The monitor is
        activated alongside the registry, so instrumented serving code
        and trainer validation hooks report into it.
    trace_events:
        Record individual span/op occurrences for
        :meth:`write_chrome_trace` (spans always record; autograd op
        events additionally need ``profile_autograd``).
    slo:
        Attach an SLO tracker (see :class:`~repro.obs.slo.SLOTracker`):
        ``True`` builds one with :func:`~repro.obs.slo.\
default_serving_slos`, or pass a configured instance.  While the
        session is open, every completed serving request feeds the
        latency/availability error budgets.
    flight:
        Attach a serving flight recorder (see
        :class:`~repro.obs.flight.FlightRecorder`): ``True`` builds one
        with defaults, or pass a configured instance.
    postmortem_dir:
        Where the flight recorder's automatic postmortem bundles land
        (sets the recorder's ``postmortem_dir`` when it has none).
    shipper:
        Attach a :class:`~repro.obs.agg.TelemetryShipper` spooling
        mergeable snapshot frames for a fleet collector: pass a
        configured instance, or just set ``spool_dir`` to build one
        with defaults.  The shipper is registered as a request observer
        while the session is open (time-based flushing rides the
        serving request stream — no threads) and ships one final frame
        on :meth:`stop`.
    spool_dir:
        Build a default shipper spooling to this directory (ignored
        when ``shipper`` is passed; the instance already has one).
    shard_label:
        Process-wide shard label set for the duration of the session
        (see :func:`~repro.obs.context.set_shard_label`): stamped on
        every completed request record, postmortem bundle name and
        shipped snapshot frame, so fleet-merged views can attribute
        state to this process.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        profile_autograd: bool = True,
        label: str = "",
        monitor: Union[bool, QualityMonitor, None] = None,
        trace_events: bool = True,
        slo: Union[bool, SLOTracker, None] = None,
        flight: Union[bool, FlightRecorder, None] = None,
        postmortem_dir: Optional[Union[str, Path]] = None,
        shipper: Optional[TelemetryShipper] = None,
        spool_dir: Optional[Union[str, Path]] = None,
        shard_label: Optional[str] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(record_events=trace_events)
        self.profiler = (
            AutogradProfiler(record_events=trace_events)
            if profile_autograd
            else None
        )
        self.callback = TelemetryCallback(self.registry)
        if monitor is None or monitor is False:
            self.monitor: Optional[QualityMonitor] = None
        elif monitor is True:
            self.monitor = QualityMonitor()
        else:
            self.monitor = monitor
        if slo is None or slo is False:
            self.slo: Optional[SLOTracker] = None
        elif slo is True:
            self.slo = SLOTracker()
        else:
            self.slo = slo
        if flight is None or flight is False:
            self.flight: Optional[FlightRecorder] = None
        elif flight is True:
            self.flight = FlightRecorder(postmortem_dir=postmortem_dir)
        else:
            self.flight = flight
        if (
            self.flight is not None
            and postmortem_dir is not None
            and self.flight.postmortem_dir is None
        ):
            self.flight.postmortem_dir = Path(postmortem_dir)
        if shipper is not None:
            self.shipper: Optional[TelemetryShipper] = shipper
        elif spool_dir is not None:
            # Bind the session's own surfaces (not the ambient lookups)
            # so the shutdown flush still sees them after the scopes in
            # stop() have been torn down.
            self.shipper = TelemetryShipper(
                spool_dir,
                process_label=shard_label,
                registry=self.registry,
                monitor=self.monitor,
                slo=self.slo,
                tracer=self.tracer,
            )
        else:
            self.shipper = None
        self.shard_label = shard_label
        self._previous_shard_label: Optional[str] = None
        self.label = label
        self._started_unix: Optional[float] = None
        self._stopped_unix: Optional[float] = None
        self._registry_scope: Optional[use_registry] = None
        self._tracer_scope: Optional[use_tracer] = None
        self._monitor_scope: Optional[use_monitor] = None
        self._slo_scope: Optional[use_slo_tracker] = None
        self._flight_scope: Optional[use_flight_recorder] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TelemetrySession":
        if self._registry_scope is not None:
            raise RuntimeError("telemetry session is already started")
        if self.shard_label is not None:
            self._previous_shard_label = get_shard_label()
            set_shard_label(self.shard_label)
        for name in _STANDARD_COUNTERS:
            self.registry.counter(name)
        self._registry_scope = use_registry(self.registry)
        self._registry_scope.__enter__()
        self._tracer_scope = use_tracer(self.tracer)
        self._tracer_scope.__enter__()
        if self.monitor is not None:
            self._monitor_scope = use_monitor(self.monitor)
            self._monitor_scope.__enter__()
        if self.slo is not None:
            self._slo_scope = use_slo_tracker(self.slo)
            self._slo_scope.__enter__()
        if self.flight is not None:
            self._flight_scope = use_flight_recorder(self.flight)
            self._flight_scope.__enter__()
        register_global_callback(self.callback)
        if self.shipper is not None:
            register_request_observer(self.shipper)
        if self.profiler is not None:
            self.profiler.enable()
        self._started_unix = time.time()
        self._stopped_unix = None
        _LOGGER.debug(kv("telemetry session started", label=self.label))
        return self

    def stop(self) -> None:
        if self._registry_scope is None:
            return
        self._stopped_unix = time.time()
        if self.profiler is not None:
            self.profiler.disable()
        if self.shipper is not None:
            unregister_request_observer(self.shipper)
            # Ship the final state before tearing the scopes down, so
            # an ambient-sourced shipper still resolves them.
            self.shipper.flush()
        unregister_global_callback(self.callback)
        if self._flight_scope is not None:
            self._flight_scope.__exit__(None, None, None)
            self._flight_scope = None
        if self._slo_scope is not None:
            self._slo_scope.__exit__(None, None, None)
            self._slo_scope = None
        if self._monitor_scope is not None:
            self._monitor_scope.__exit__(None, None, None)
            self._monitor_scope = None
        if self._tracer_scope is not None:
            self._tracer_scope.__exit__(None, None, None)
            self._tracer_scope = None
        self._registry_scope.__exit__(None, None, None)
        self._registry_scope = None
        if self.shard_label is not None:
            set_shard_label(self._previous_shard_label)
            self._previous_shard_label = None
        _LOGGER.debug(kv("telemetry session stopped", label=self.label))

    def __enter__(self) -> "TelemetrySession":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[Dict[str, object]]:
        """Every report line as a JSON-friendly dict."""
        meta: Dict[str, object] = {
            "type": "meta",
            "label": self.label,
            "started_unix": self._started_unix,
            "stopped_unix": self._stopped_unix,
        }
        if self._started_unix is not None:
            meta["duration_seconds"] = (
                self._stopped_unix or time.time()
            ) - self._started_unix
        yield meta
        for index, record in enumerate(self.callback.epochs):
            yield {"type": "epoch", "index": index, "record": record}
        for record in self.registry.iter_records():
            yield dict(record)  # carries its own "type" discriminator
        if self.profiler is not None:
            for record in self.profiler.iter_records():
                out: Dict[str, object] = {"type": "autograd_op"}
                out.update(record)
                yield out
        for record in self.tracer.iter_records():
            out = {"type": "span"}
            out.update(record)
            yield out
        if self.monitor is not None:
            for record in self.monitor.iter_records():
                yield dict(record)  # carries its own "type" discriminator
        if self.slo is not None:
            for record in self.slo.iter_records():
                yield dict(record)
            for alert_record in self.slo.alerts.iter_records():
                out = {"type": "alert", "source": "slo"}
                out.update(alert_record)
                yield out
        if self.flight is not None:
            yield from self.flight.iter_records()

    def write_chrome_trace(self, destination: Union[str, Path]) -> None:
        """Write span + autograd op events as one Chrome/Perfetto trace.

        Both event sources share a common time origin (the earliest
        recorded start across either), so their timelines line up; spans
        render on ``tid=1`` and autograd ops on ``tid=2``.
        """
        starts = [
            start
            for start in (
                self.tracer.earliest_event_start(),
                self.profiler.earliest_event_start() if self.profiler else None,
            )
            if start is not None
        ]
        origin = min(starts) if starts else None
        events = self.tracer.chrome_trace_events(origin=origin)
        if self.profiler is not None:
            events.extend(self.profiler.chrome_trace_events(origin=origin))
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "span_events_dropped": self.tracer.dropped_events,
                "span_max_events": self.tracer.max_events,
            },
        }
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(json.dumps(payload), encoding="utf-8")

    def write_jsonl(self, destination: Union[str, "IO[str]"]) -> None:
        """Dump the run report, one JSON object per line."""
        if hasattr(destination, "write"):
            for record in self.iter_records():
                destination.write(json.dumps(record) + "\n")
        else:
            Path(destination).parent.mkdir(parents=True, exist_ok=True)
            with open(destination, "w", encoding="utf-8") as handle:
                for record in self.iter_records():
                    handle.write(json.dumps(record) + "\n")

    def render_text(self) -> str:
        """Short human-readable summary of the run."""
        lines: List[str] = [f"telemetry report{f' ({self.label})' if self.label else ''}"]
        if self.callback.epochs:
            lines.append(f"  epochs recorded: {len(self.callback.epochs)}")
        metrics_text = self.registry.to_text()
        if metrics_text:
            lines.append("  metrics:")
            lines.extend("    " + line for line in metrics_text.splitlines())
        if self.profiler is not None and self.profiler.report():
            lines.append("  autograd ops (hottest first):")
            lines.extend("    " + line for line in self.profiler.to_text().splitlines())
        spans_text = self.tracer.to_text()
        if spans_text:
            lines.append("  spans:")
            lines.extend("    " + line for line in spans_text.splitlines())
        if self.monitor is not None:
            lines.extend("  " + line for line in self.monitor.to_text().splitlines())
        if self.slo is not None:
            lines.extend("  " + line for line in self.slo.to_text().splitlines())
        if self.flight is not None:
            lines.extend("  " + line for line in self.flight.to_text().splitlines())
        return "\n".join(lines)
