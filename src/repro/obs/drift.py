"""Distribution-drift detection between a frozen reference and a live window.

Production CTR systems watch the *distribution* of model scores and key
features, not just their averages: an embedding refresh that shifts every
score by a few percent is invisible to a mean but obvious to a
population-stability index.  This module provides the two standard
divergences over binned distributions —

* **PSI** (population stability index), the symmetric
  ``sum((q - p) * ln(q / p))`` that credit-risk and CTR serving stacks
  alarm on (conventional thresholds: 0.1 "watch", 0.25 "act"); and
* **KL divergence** ``KL(live || reference)``;

plus :class:`DriftDetector`, which accumulates a *frozen* reference
window first (warm-up), then maintains a sliding live window and exposes
both divergences against the reference.  All inputs are binned into
fixed equal-width bins, so updates are O(batch) and memory is O(bins).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.obs.window import SlidingBlocks

__all__ = ["psi", "kl_divergence", "DriftDetector"]


def _smoothed_distributions(
    reference_counts, live_counts, alpha: float
) -> "tuple[np.ndarray, np.ndarray]":
    reference_counts = np.asarray(reference_counts, dtype=float)
    live_counts = np.asarray(live_counts, dtype=float)
    if reference_counts.shape != live_counts.shape:
        raise ValueError(
            "count vectors must have matching shapes, got "
            f"{reference_counts.shape} vs {live_counts.shape}"
        )
    if reference_counts.sum() <= 0 or live_counts.sum() <= 0:
        raise ValueError("both count vectors need at least one observation")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    p = reference_counts + alpha
    q = live_counts + alpha
    return p / p.sum(), q / q.sum()


def psi(reference_counts, live_counts, alpha: float = 0.5) -> float:
    """Population stability index between two binned distributions.

    ``alpha`` is a Laplace smoothing pseudo-count added to every bin so
    empty bins contribute a finite, smoothly-vanishing term.
    """
    p, q = _smoothed_distributions(reference_counts, live_counts, alpha)
    return float(np.sum((q - p) * np.log(q / p)))


def kl_divergence(reference_counts, live_counts, alpha: float = 0.5) -> float:
    """``KL(live || reference)`` between two binned distributions."""
    p, q = _smoothed_distributions(reference_counts, live_counts, alpha)
    return float(np.sum(q * np.log(q / p)))


class DriftDetector:
    """Frozen-reference vs sliding-live-window divergence over one signal.

    The first ``reference_size`` observations build the reference
    histogram, which then freezes; later observations roll through a
    sliding window (see :class:`~repro.obs.window.SlidingBlocks`).  Until
    the reference is frozen *and* the live window holds at least
    ``min_live`` observations, the detector reports itself not
    :attr:`ready` and its divergences are ``None`` — the warm-up
    handling that keeps early noisy windows from paging anyone.

    Parameters
    ----------
    n_bins, lo, hi:
        Equal-width binning of the signal; values outside ``[lo, hi]``
        clamp into the edge bins.
    reference_size:
        Observations accumulated before the reference freezes.
    window:
        Live sliding-window span (observations).
    min_live:
        Live observations required before divergences are reported.
    alpha:
        Laplace smoothing pseudo-count per bin.
    """

    def __init__(
        self,
        n_bins: int = 32,
        lo: float = 0.0,
        hi: float = 1.0,
        reference_size: int = 2000,
        window: int = 2000,
        min_live: Optional[int] = None,
        alpha: float = 0.5,
    ) -> None:
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        if reference_size < 1:
            raise ValueError(f"reference_size must be >= 1, got {reference_size}")
        self.n_bins = n_bins
        self.lo = float(lo)
        self.hi = float(hi)
        self.reference_size = reference_size
        self.min_live = min_live if min_live is not None else max(1, window // 4)
        self.alpha = alpha
        self._reference = np.zeros(n_bins)
        self._n_reference = 0
        self._live = SlidingBlocks((n_bins,), window=window)

    # ------------------------------------------------------------------
    def _bin(self, values: np.ndarray) -> np.ndarray:
        scaled = (values - self.lo) / (self.hi - self.lo) * self.n_bins
        return np.clip(scaled.astype(np.int64), 0, self.n_bins - 1)

    def update(self, values) -> None:
        """Fold a batch of observations into the detector."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        remaining = self.reference_size - self._n_reference
        if remaining > 0:
            head, values = values[:remaining], values[remaining:]
            self._reference += np.bincount(
                self._bin(head), minlength=self.n_bins
            )
            self._n_reference += head.size
        if values.size:
            counts = np.bincount(self._bin(values), minlength=self.n_bins)
            self._live.add(values.size, counts.astype(float))

    # ------------------------------------------------------------------
    @property
    def reference_frozen(self) -> bool:
        return self._n_reference >= self.reference_size

    @property
    def n_reference(self) -> int:
        return self._n_reference

    @property
    def n_live(self) -> int:
        return self._live.count

    @property
    def ready(self) -> bool:
        """Whether both windows hold enough data to compare."""
        return self.reference_frozen and self._live.count >= self.min_live

    def psi(self) -> Optional[float]:
        """Windowed PSI against the reference (None while warming up)."""
        if not self.ready:
            return None
        (live,) = self._live.totals()
        return psi(self._reference, live, alpha=self.alpha)

    def kl(self) -> Optional[float]:
        """Windowed ``KL(live || reference)`` (None while warming up)."""
        if not self.ready:
            return None
        (live,) = self._live.totals()
        return kl_divergence(self._reference, live, alpha=self.alpha)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state: divergences plus window occupancy."""
        return {
            "psi": self.psi(),
            "kl": self.kl(),
            "n_reference": self._n_reference,
            "n_live": self._live.count,
            "ready": self.ready,
        }

    def reset_reference(self) -> None:
        """Re-open the reference window (e.g. after a planned model swap)."""
        self._reference = np.zeros(self.n_bins)
        self._n_reference = 0
        self._live.reset()
