"""Declarative SLOs with rolling error budgets and burn-rate alerting.

An :class:`SLO` declares an objective over a stream of *eligible events*
— "99% of refresh requests complete within 50 ms", "99.9% of requests
succeed", "95% of quality evaluations see the streaming AUC above 0.55"
— and an :class:`SLOTracker` turns the serving stream into:

* per-SLO **error budgets**: over a rolling window of the last
  ``window`` eligible events, the budget is the allowed bad fraction
  (``1 - objective``); ``budget_remaining`` is how much of it is left
  (1.0 untouched, <= 0.0 exhausted);
* **multi-window burn rates**: the bad fraction divided by the allowed
  fraction, measured over a short window and the full window.  The
  exported ``slo.<name>.burn_rate`` is the *minimum* of the two, so a
  threshold on it implements the classic multi-window rule — both the
  fast and the slow window must burn hot before anything fires, which
  debounces one-off stragglers without missing a sustained regression;
* generated :class:`~repro.obs.alerts.AlertRule` instances evaluated by
  a standard :class:`~repro.obs.alerts.AlertEngine`, so SLO alerts share
  sinks, hysteresis, history and flight-recorder postmortem triggering
  with the PR-4 quality alerts;
* registry gauges (``slo.*``) mirrored on every evaluation, so the
  Prometheus and JSONL exporters carry budget state with no extra code.

Latency and availability events arrive through the request-observer
interface of :mod:`repro.obs.context` (the tracker registers itself
while active); quality-floor events arrive from the serving engine,
which feeds each refresh's monitor snapshot via
:meth:`SLOTracker.observe_quality`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs.alerts import Alert, AlertEngine, AlertRule, AlertSink, Severity
from repro.obs.context import (
    register_request_observer,
    unregister_request_observer,
)
from repro.obs.metrics import get_active_registry

__all__ = [
    "SLO",
    "SLOWindow",
    "SLOTracker",
    "default_serving_slos",
    "get_active_slo_tracker",
    "use_slo_tracker",
]

_KINDS = ("latency", "availability", "quality")


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    Attributes
    ----------
    name:
        Unique identifier; metrics export as ``slo.<name>.*``.
    kind:
        ``"latency"`` — an eligible request is *good* when its duration
        is at or under ``threshold`` seconds; ``"availability"`` — good
        when the request completed without an exception; ``"quality"``
        — good when the watched monitor metric is at or above
        ``threshold`` at evaluation time.
    objective:
        Target good fraction in ``(0, 1)``; the error budget is
        ``1 - objective``.
    threshold:
        Latency bound in seconds, or the quality floor (ignored for
        availability).
    request_kind:
        Restrict latency/availability accounting to one request kind
        (``"ingest"``, ``"refresh"``, ``"top_k"``, ``"recommend"``);
        None counts every request.
    metric:
        Snapshot key watched by quality SLOs (e.g.
        ``"quality.streaming_auc"``).
    window, fast_window:
        Rolling event-window sizes for the budget (slow) and the fast
        burn-rate window.
    min_events:
        Eligible events required in a window before its burn rate is
        reported (warm-up: a half-empty window neither fires nor clears).
    burn_alert:
        Burn-rate threshold of the generated alert rule.  1.0 burns the
        budget exactly at the sustainable rate; the default 2.0 pages on
        budget being consumed twice as fast as it can be afforded.
    severity:
        Severity of the generated burn-rate rule (budget exhaustion is
        always critical).
    """

    name: str
    kind: str
    objective: float = 0.99
    threshold: float = 0.0
    request_kind: Optional[str] = None
    metric: Optional[str] = None
    window: int = 2000
    fast_window: int = 200
    min_events: int = 20
    burn_alert: float = 2.0
    severity: str = Severity.WARNING

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and self.threshold <= 0.0:
            raise ValueError(
                f"latency SLO {self.name!r} needs a positive threshold "
                f"(seconds), got {self.threshold}"
            )
        if self.kind == "quality" and not self.metric:
            raise ValueError(f"quality SLO {self.name!r} needs a metric")
        if self.window < 1 or self.fast_window < 1:
            raise ValueError("window sizes must be >= 1")
        if self.fast_window > self.window:
            raise ValueError(
                f"fast_window ({self.fast_window}) cannot exceed window "
                f"({self.window})"
            )
        if self.min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {self.min_events}")
        if self.burn_alert <= 0.0:
            raise ValueError(f"burn_alert must be > 0, got {self.burn_alert}")

    # Convenience constructors ------------------------------------------------
    @staticmethod
    def latency(
        name: str,
        threshold_seconds: float,
        objective: float = 0.99,
        request_kind: Optional[str] = None,
        **kwargs,
    ) -> "SLO":
        """A latency objective: ``objective`` of requests within the bound."""
        return SLO(
            name,
            "latency",
            objective=objective,
            threshold=threshold_seconds,
            request_kind=request_kind,
            **kwargs,
        )

    @staticmethod
    def availability(
        name: str,
        objective: float = 0.999,
        request_kind: Optional[str] = None,
        **kwargs,
    ) -> "SLO":
        """An availability objective: ``objective`` of requests succeed."""
        return SLO(
            name,
            "availability",
            objective=objective,
            request_kind=request_kind,
            **kwargs,
        )

    @staticmethod
    def quality(
        name: str,
        metric: str,
        floor: float,
        objective: float = 0.95,
        **kwargs,
    ) -> "SLO":
        """A quality objective: ``objective`` of evaluations above the floor."""
        return SLO(
            name,
            "quality",
            objective=objective,
            threshold=floor,
            metric=metric,
            **kwargs,
        )


class SLOWindow:
    """Rolling good/bad accounting over slow and fast event windows.

    Events are booleans (good?) appended once per eligible event; both
    windows keep O(1) running bad counts.  Latency SLOs additionally
    sample recent durations (bounded) for p50/p99 reporting.
    """

    __slots__ = (
        "slo", "_slow", "_fast", "_slow_bad", "_fast_bad",
        "_durations", "_duration_next", "_duration_count", "_duration_seen",
        "_pct_cache", "_pct_at",
        "total_events", "total_bad",
    )

    _DURATION_CAPACITY = 2048
    # Percentiles are recomputed at most once per this many new duration
    # samples: the burn-rate/budget alerting never reads them (it counts
    # threshold breaches), so the exported p50/p99 gauges may lag by a
    # bounded sample count in exchange for a cheap evaluate hot path.
    _PCT_REFRESH_SAMPLES = _DURATION_CAPACITY // 8

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        self._slow: Deque[bool] = deque(maxlen=slo.window)
        self._fast: Deque[bool] = deque(maxlen=slo.fast_window)
        self._slow_bad = 0
        self._fast_bad = 0
        # Duration samples live in a preallocated ring so snapshot-time
        # percentiles skip the python-list-to-array conversion.
        self._durations = np.empty(self._DURATION_CAPACITY, dtype=float)
        self._duration_next = 0
        self._duration_count = 0
        self._duration_seen = 0
        self._pct_cache: Optional[Tuple[float, float]] = None
        self._pct_at = 0
        self.total_events = 0
        self.total_bad = 0

    def add(self, good: bool, duration: Optional[float] = None) -> None:
        bad = not good
        if len(self._slow) == self._slow.maxlen and not self._slow[0]:
            self._slow_bad -= 1
        self._slow.append(good)
        if bad:
            self._slow_bad += 1
        if len(self._fast) == self._fast.maxlen and not self._fast[0]:
            self._fast_bad -= 1
        self._fast.append(good)
        if bad:
            self._fast_bad += 1
        if duration is not None:
            self._push_duration(duration)
        self.total_events += 1
        self.total_bad += bad

    def _push_duration(self, duration: float) -> None:
        self._durations[self._duration_next] = duration
        self._duration_next = (self._duration_next + 1) % self._DURATION_CAPACITY
        if self._duration_count < self._DURATION_CAPACITY:
            self._duration_count += 1
        self._duration_seen += 1

    # ------------------------------------------------------------------
    def _burn(self, bad: int, total: int) -> Optional[float]:
        if total < self.slo.min_events:
            return None
        allowed = 1.0 - self.slo.objective
        return (bad / total) / allowed

    def burn_rate_fast(self) -> Optional[float]:
        return self._burn(self._fast_bad, len(self._fast))

    def burn_rate_slow(self) -> Optional[float]:
        return self._burn(self._slow_bad, len(self._slow))

    def burn_rate(self) -> Optional[float]:
        """Multi-window burn: the minimum of fast and slow (see module doc)."""
        fast = self.burn_rate_fast()
        slow = self.burn_rate_slow()
        if fast is None or slow is None:
            return None
        return min(fast, slow)

    def budget_remaining(self) -> Optional[float]:
        """Fraction of the slow window's error budget left (can go < 0)."""
        total = len(self._slow)
        if total < self.slo.min_events:
            return None
        allowed = (1.0 - self.slo.objective) * total
        return 1.0 - self._slow_bad / allowed

    def snapshot(self) -> Dict[str, Optional[float]]:
        name = self.slo.name
        total = len(self._slow)
        out: Dict[str, Optional[float]] = {
            f"slo.{name}.events": float(self.total_events),
            f"slo.{name}.bad_events": float(self.total_bad),
            f"slo.{name}.window_events": float(total),
            f"slo.{name}.window_bad": float(self._slow_bad),
            f"slo.{name}.bad_fraction": (
                self._slow_bad / total if total else None
            ),
            f"slo.{name}.budget_remaining": self.budget_remaining(),
            f"slo.{name}.burn_rate_fast": self.burn_rate_fast(),
            f"slo.{name}.burn_rate_slow": self.burn_rate_slow(),
            f"slo.{name}.burn_rate": self.burn_rate(),
        }
        if self.slo.kind == "latency" and self._duration_count:
            if (
                self._pct_cache is None
                or self._duration_seen - self._pct_at >= self._PCT_REFRESH_SAMPLES
            ):
                durations = self._durations[: self._duration_count]
                p50, p99 = np.percentile(durations, (50.0, 99.0))
                self._pct_cache = (float(p50), float(p99))
                self._pct_at = self._duration_seen
            out[f"slo.{name}.p50_seconds"] = self._pct_cache[0]
            out[f"slo.{name}.p99_seconds"] = self._pct_cache[1]
        return out

    # ------------------------------------------------------------------
    # Mergeable snapshots
    # ------------------------------------------------------------------
    def _chronological_durations(self) -> List[float]:
        if self._duration_count < self._DURATION_CAPACITY:
            return self._durations[: self._duration_count].tolist()
        return (
            self._durations[self._duration_next :].tolist()
            + self._durations[: self._duration_next].tolist()
        )

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable state: SLO config, windowed events, duration sample.

        The slow window ships as a ``"0"``/``"1"`` string (oldest event
        first) so the receiver can *replay* it; everything older than the
        window is summarised by the cumulative totals.
        """
        events = "".join("1" if good else "0" for good in self._slow)
        return {
            "slo": asdict(self.slo),
            "events": events,
            "durations": self._chronological_durations(),
            "total_events": self.total_events,
            "total_bad": self.total_bad,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Replay another window's snapshot onto this one.

        Events that had already fallen off the sender's window fold into
        the cumulative totals only; the windowed events replay through
        :meth:`add` (latency durations re-paired with their events), so
        merging chunked snapshots in stream order reproduces the
        whole-stream window exactly while everything fits, and keeps the
        most recent ``window`` events of the concatenation beyond that.
        """
        config = dict(state["slo"])  # type: ignore[arg-type]
        config["request_kind"] = config.get("request_kind") or None
        config["metric"] = config.get("metric") or None
        if config != asdict(self.slo):
            raise ValueError(
                f"SLO config mismatch for {self.slo.name!r}: refusing to "
                "merge windows tracking different objectives"
            )
        events = str(state["events"])
        durations = [float(value) for value in state["durations"]]  # type: ignore[union-attr]
        # Totals for events older than the shipped window.
        windowed_bad = events.count("0")
        self.total_events += int(state["total_events"]) - len(events)  # type: ignore[arg-type]
        self.total_bad += int(state["total_bad"]) - windowed_bad  # type: ignore[arg-type]
        # Durations older than the shipped events only feed the ring.
        paired = min(len(durations), len(events))
        for value in durations[: len(durations) - paired]:
            self._push_duration(value)
        tail = durations[len(durations) - paired :]
        offset = len(events) - paired
        for position, flag in enumerate(events):
            duration = tail[position - offset] if position >= offset else None
            self.add(flag == "1", duration=duration)


def default_serving_slos(
    latency_p99_seconds: float = 0.25,
    latency_objective: float = 0.99,
    availability_objective: float = 0.999,
    auc_floor: float = 0.52,
    window: int = 2000,
    fast_window: int = 200,
) -> Tuple[SLO, ...]:
    """The stock serving SLO set (thresholds overridable).

    One latency objective over every request kind, one availability
    objective, and a streaming-AUC floor riding the PR-4 quality
    monitor.  As with :func:`~repro.obs.quality.default_quality_rules`
    the defaults are loose — they exist to catch serving regressions,
    not to grade a laptop run.
    """
    return (
        SLO.latency(
            "serving-latency",
            latency_p99_seconds,
            objective=latency_objective,
            window=window,
            fast_window=fast_window,
        ),
        SLO.availability(
            "serving-availability",
            objective=availability_objective,
            window=window,
            fast_window=fast_window,
            severity=Severity.CRITICAL,
        ),
        SLO.quality(
            "streaming-auc",
            "quality.streaming_auc",
            floor=auc_floor,
            window=max(8, window // 20),
            fast_window=max(4, fast_window // 20),
            min_events=4,
        ),
    )


class SLOTracker:
    """Evaluates declared SLOs against the live serving stream.

    While active (:class:`use_slo_tracker`), the tracker registers as a
    request observer — every completed root
    :class:`~repro.obs.context.request_scope` feeds the latency and
    availability windows — and the serving engine feeds quality SLOs
    with each refresh's monitor snapshot.  Alert rules are evaluated
    every ``evaluate_every`` requests and on every explicit
    :meth:`evaluate` call (the engine does one per refresh).

    Parameters
    ----------
    slos:
        The declared objectives (defaults to :func:`default_serving_slos`).
    sinks:
        Alert sinks shared by every generated rule.
    evaluate_every:
        Auto-evaluation cadence in completed requests (0 disables —
        only explicit :meth:`evaluate` calls run the rules).
    """

    def __init__(
        self,
        slos: Optional[Sequence[SLO]] = None,
        sinks: Sequence[AlertSink] = (),
        evaluate_every: int = 64,
    ) -> None:
        slos = tuple(slos) if slos is not None else default_serving_slos()
        names = [slo.name for slo in slos]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate SLO names in {names}")
        if evaluate_every < 0:
            raise ValueError(
                f"evaluate_every must be >= 0, got {evaluate_every}"
            )
        self.slos = slos
        self.windows: Dict[str, SLOWindow] = {
            slo.name: SLOWindow(slo) for slo in slos
        }
        # Split once by kind: on_request rides the serving hot path, so
        # it folds a precomputed (window, slo) list instead of filtering
        # the full window dict per request.
        self._request_windows = [
            (window, window.slo)
            for window in self.windows.values()
            if window.slo.kind != "quality"
        ]
        self._quality_windows = [
            (window, window.slo)
            for window in self.windows.values()
            if window.slo.kind == "quality"
        ]
        self.alerts = AlertEngine(self.generated_rules(), sinks=sinks)
        self.evaluate_every = evaluate_every
        self.requests_seen = 0
        self._since_evaluate = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _rules_for(slo: SLO) -> Tuple[AlertRule, AlertRule]:
        return (
            AlertRule(
                f"slo-burn:{slo.name}",
                f"slo.{slo.name}.burn_rate",
                threshold=slo.burn_alert,
                direction="above",
                clear_threshold=min(1.0, slo.burn_alert),
                severity=slo.severity,
            ),
            AlertRule(
                f"slo-budget:{slo.name}",
                f"slo.{slo.name}.budget_remaining",
                threshold=0.0,
                direction="below",
                clear_threshold=0.1,
                severity=Severity.CRITICAL,
            ),
        )

    def generated_rules(self) -> Tuple[AlertRule, ...]:
        """Two rules per SLO: burn-rate breach and budget exhaustion."""
        rules: List[AlertRule] = []
        for slo in self.slos:
            rules.extend(self._rules_for(slo))
        return tuple(rules)

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def on_request(self, record) -> None:
        """Request-observer hook: fold one completed root request in."""
        self.requests_seen += 1
        duration = record.duration_seconds
        ok = record.status == "ok"
        for window, slo in self._request_windows:
            if slo.request_kind is not None and slo.request_kind != record.kind:
                continue
            if slo.kind == "latency":
                window.add(duration <= slo.threshold, duration=duration)
            else:  # availability
                window.add(ok)
        if self.evaluate_every:
            self._since_evaluate += 1
            if self._since_evaluate >= self.evaluate_every:
                self.evaluate()

    def observe_quality(self, snapshot: Mapping[str, object]) -> None:
        """Fold one monitor snapshot into the quality SLO windows.

        Metrics that are absent, None or non-finite are skipped (the
        estimator is still warming up — neither good nor bad).
        """
        for window, slo in self._quality_windows:
            value = snapshot.get(slo.metric)
            if value is None or not isinstance(value, (int, float)):
                continue
            value = float(value)
            if not math.isfinite(value):
                continue
            window.add(value >= slo.threshold)

    # ------------------------------------------------------------------
    # Snapshots, alerting, reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Optional[float]]:
        """Flat ``slo.*`` metric mapping across every declared SLO."""
        out: Dict[str, Optional[float]] = {}
        for name in sorted(self.windows):
            out.update(self.windows[name].snapshot())
        return out

    def evaluate(self) -> List[Alert]:
        """Run the burn-rate/budget rules against a fresh snapshot.

        Finite values are mirrored into the active metrics registry as
        gauges so the Prometheus/JSONL exporters carry budget state.
        """
        self._since_evaluate = 0
        snapshot = self.snapshot()
        registry = get_active_registry()
        if registry is not None:
            for name, value in snapshot.items():
                if isinstance(value, (int, float)) and math.isfinite(value):
                    registry.gauge(name).set(value)
        return self.alerts.evaluate(snapshot)

    # ------------------------------------------------------------------
    # Mergeable snapshots
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable per-SLO window states plus the request counter."""
        return {
            "windows": {
                name: self.windows[name].snapshot_state()
                for name in sorted(self.windows)
            },
            "requests_seen": self.requests_seen,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another tracker's shipped state into this one.

        Windows for SLOs this tracker has not declared are adopted from
        the snapshot's embedded config, so a collector built with an
        empty tracker accumulates the union of the fleet's objectives.
        """
        for name, window_state in sorted(state["windows"].items()):  # type: ignore[union-attr]
            if name not in self.windows:
                slo = SLO(**dict(window_state["slo"]))
                window = SLOWindow(slo)
                self.windows[name] = window
                self.slos = self.slos + (slo,)
                if slo.kind == "quality":
                    self._quality_windows.append((window, slo))
                else:
                    self._request_windows.append((window, slo))
                self.alerts.add_rules(self._rules_for(slo))
            self.windows[name].merge_state(window_state)
        self.requests_seen += int(state["requests_seen"])  # type: ignore[arg-type]

    def exhausted(self) -> List[str]:
        """Names of SLOs whose error budget is currently spent."""
        out = []
        for name, window in sorted(self.windows.items()):
            remaining = window.budget_remaining()
            if remaining is not None and remaining <= 0.0:
                out.append(name)
        return out

    def iter_records(self):
        """One JSON-friendly ``slo`` record per declared objective."""
        for name in sorted(self.windows):
            window = self.windows[name]
            slo = window.slo
            record: Dict[str, object] = {
                "type": "slo",
                "name": name,
                "kind": slo.kind,
                "objective": slo.objective,
                "threshold": slo.threshold,
                "request_kind": slo.request_kind,
                "metric": slo.metric,
            }
            prefix = f"slo.{name}."
            for key, value in window.snapshot().items():
                record[key[len(prefix):]] = value
            yield record

    def to_text(self) -> str:
        """Short human-readable budget summary, one line per SLO."""
        lines = ["slo error budgets"]
        for name in sorted(self.windows):
            window = self.windows[name]
            remaining = window.budget_remaining()
            burn = window.burn_rate()
            lines.append(
                f"  {name} ({window.slo.kind}): "
                f"budget_remaining="
                f"{'n/a' if remaining is None else format(remaining, '.3f')} "
                f"burn_rate={'n/a' if burn is None else format(burn, '.3f')} "
                f"window={len(window._slow)}/{window.slo.window}"
            )
        fired = len(self.alerts.fired)
        active = self.alerts.active_alerts()
        lines.append(
            f"  alerts: {fired} fired, {len(active)} active"
            f"{' (' + ', '.join(active) + ')' if active else ''}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Active-tracker scoping (mirrors use_registry / use_monitor)
# ----------------------------------------------------------------------
_ACTIVE_TRACKERS: List[SLOTracker] = []


def get_active_slo_tracker() -> Optional[SLOTracker]:
    """The innermost active SLO tracker, or None when SLOs are off."""
    return _ACTIVE_TRACKERS[-1] if _ACTIVE_TRACKERS else None


class use_slo_tracker:
    """Activate ``tracker`` for the block: ambient lookup + request feed."""

    def __init__(self, tracker: SLOTracker) -> None:
        self._tracker = tracker

    def __enter__(self) -> SLOTracker:
        _ACTIVE_TRACKERS.append(self._tracker)
        register_request_observer(self._tracker)
        return self._tracker

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        unregister_request_observer(self._tracker)
        for position in range(len(_ACTIVE_TRACKERS) - 1, -1, -1):
            if _ACTIVE_TRACKERS[position] is self._tracker:
                del _ACTIVE_TRACKERS[position]
                break
