"""Structured logging for the reproduction.

All repo loggers live under the ``"repro"`` namespace so one call to
:func:`configure_logging` controls the whole stack (the CLI exposes it as
``--log-level``).  The formatter emits ``key=value`` structured lines:

    2026-08-05 12:00:00,123 level=INFO logger=repro.experiments msg="table1 finished" elapsed_s=4.21

Handlers installed by :func:`configure_logging` are tagged so repeated
configuration replaces rather than stacks them.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["LOGGER_NAME", "get_logger", "configure_logging", "kv"]

LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s level=%(levelname)s logger=%(name)s %(message)s"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the shared ``repro`` namespace."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def kv(message: str, **fields) -> str:
    """Render ``msg="..."`` plus ``key=value`` pairs for structured lines."""
    parts = [f'msg="{message}"']
    for key, value in fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        elif isinstance(value, str) and (" " in value or not value):
            parts.append(f'{key}="{value}"')
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def configure_logging(
    level: str = "info", stream: Optional["IO[str]"] = None
) -> logging.Logger:
    """Install (or replace) the repro log handler at ``level``.

    Parameters
    ----------
    level:
        One of ``debug`` / ``info`` / ``warning`` / ``error``
        (case-insensitive).
    stream:
        Destination stream; defaults to ``sys.stderr``.
    """
    try:
        resolved = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(resolved)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_obs_handler = True
    logger.addHandler(handler)
    return logger
