"""Regression metrics for the multi-task food-delivery experiments."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_float

__all__ = ["mae", "mse", "rmse", "r2_score"]


def _check_pair(y_true, y_pred):
    y_true = as_1d_float(y_true, "y_true")
    y_pred = as_1d_float(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred must match, got {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def mae(y_true, y_pred) -> float:
    """Mean absolute error — the paper's Table IV metric."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mse(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 = perfect, 0 = mean predictor)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    residual = float(np.sum((y_true - y_pred) ** 2))
    if total < 1e-24:
        return 0.0 if residual > 1e-24 else 1.0
    return 1.0 - residual / total
