"""Top-k ranking metrics for the personalised-recommendation application.

The paper's deployed system feeds ATNN scores into personalised search &
recommendation; these metrics evaluate that use: given per-user candidate
scores and binary relevance, compute hit rate, recall, NDCG and MRR at a
cutoff, plus a helper that averages them over users.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import as_1d_float

__all__ = ["hit_rate_at_k", "recall_at_k", "ndcg_at_k", "mrr_at_k", "ranking_report"]


def _check(relevance, scores, k: int) -> Tuple[np.ndarray, np.ndarray]:
    relevance = as_1d_float(relevance, "relevance")
    scores = as_1d_float(scores, "scores")
    if relevance.shape != scores.shape:
        raise ValueError(
            f"relevance and scores must match, got {relevance.shape} vs {scores.shape}"
        )
    if not 1 <= k <= relevance.size:
        raise ValueError(f"k must be in [1, {relevance.size}], got {k}")
    if not np.isin(np.unique(relevance), (0.0, 1.0)).all():
        raise ValueError("relevance must be binary 0/1")
    return relevance, scores


def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
    top = np.argpartition(scores, -k)[-k:]
    return top[np.argsort(scores[top])[::-1]]


def hit_rate_at_k(relevance, scores, k: int) -> float:
    """1.0 if any relevant item appears in the top-k, else 0.0."""
    relevance, scores = _check(relevance, scores, k)
    return float(relevance[_top_k(scores, k)].max())


def recall_at_k(relevance, scores, k: int) -> float:
    """Fraction of relevant items retrieved in the top-k.

    Raises
    ------
    ValueError
        If there are no relevant items (recall undefined).
    """
    relevance, scores = _check(relevance, scores, k)
    n_relevant = relevance.sum()
    if n_relevant == 0:
        raise ValueError("recall is undefined without relevant items")
    return float(relevance[_top_k(scores, k)].sum() / n_relevant)


def ndcg_at_k(relevance, scores, k: int) -> float:
    """Normalised discounted cumulative gain at k (binary gains)."""
    relevance, scores = _check(relevance, scores, k)
    n_relevant = int(relevance.sum())
    if n_relevant == 0:
        raise ValueError("NDCG is undefined without relevant items")
    gains = relevance[_top_k(scores, k)]
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = float((gains * discounts).sum())
    ideal = float(discounts[: min(k, n_relevant)].sum())
    return dcg / ideal


def mrr_at_k(relevance, scores, k: int) -> float:
    """Reciprocal rank of the first relevant item in the top-k (0 if none)."""
    relevance, scores = _check(relevance, scores, k)
    gains = relevance[_top_k(scores, k)]
    hits = np.flatnonzero(gains)
    if hits.size == 0:
        return 0.0
    return float(1.0 / (hits[0] + 1))


def ranking_report(
    per_user: Iterable[Tuple[Sequence[float], Sequence[float]]],
    k: int,
) -> Dict[str, float]:
    """Average ranking metrics over users.

    Parameters
    ----------
    per_user:
        Iterable of ``(relevance, scores)`` pairs, one per user.  Users
        with no relevant items are skipped (standard convention).
    k:
        Cutoff.

    Returns
    -------
    dict
        Mean ``hit_rate``, ``recall``, ``ndcg``, ``mrr`` plus the number
        of evaluated users under ``n_users``.
    """
    hits: List[float] = []
    recalls: List[float] = []
    ndcgs: List[float] = []
    mrrs: List[float] = []
    for relevance, scores in per_user:
        relevance = np.asarray(relevance, dtype=np.float64)
        if relevance.sum() == 0:
            continue
        hits.append(hit_rate_at_k(relevance, scores, k))
        recalls.append(recall_at_k(relevance, scores, k))
        ndcgs.append(ndcg_at_k(relevance, scores, k))
        mrrs.append(mrr_at_k(relevance, scores, k))
    if not hits:
        raise ValueError("no users with relevant items to evaluate")
    return {
        "hit_rate": float(np.mean(hits)),
        "recall": float(np.mean(recalls)),
        "ndcg": float(np.mean(ndcgs)),
        "mrr": float(np.mean(mrrs)),
        "n_users": float(len(hits)),
    }
