"""Classification metrics beyond AUC."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_float

__all__ = ["log_loss", "accuracy", "precision_at_k", "calibration_error"]


def _check_pair(labels, scores):
    labels = as_1d_float(labels, "labels")
    scores = as_1d_float(scores, "scores")
    if labels.shape != scores.shape:
        raise ValueError(
            f"labels and scores must match, got {labels.shape} vs {scores.shape}"
        )
    if labels.size == 0:
        raise ValueError("metrics need at least one sample")
    return labels, scores


def log_loss(labels, probabilities, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of binary labels under probabilities."""
    labels, probabilities = _check_pair(labels, probabilities)
    clipped = np.clip(probabilities, eps, 1.0 - eps)
    return float(
        -np.mean(labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped))
    )


def accuracy(labels, probabilities, threshold: float = 0.5) -> float:
    """Fraction of correct hard decisions at ``threshold``."""
    labels, probabilities = _check_pair(labels, probabilities)
    return float(np.mean((probabilities >= threshold) == (labels == 1.0)))


def precision_at_k(labels, scores, k: int) -> float:
    """Fraction of positives among the top-``k`` scored samples."""
    labels, scores = _check_pair(labels, scores)
    if not 1 <= k <= labels.size:
        raise ValueError(f"k must be in [1, {labels.size}], got {k}")
    top = np.argsort(scores)[::-1][:k]
    return float(labels[top].mean())


def calibration_error(labels, probabilities, n_bins: int = 10) -> float:
    """Expected calibration error over equal-width probability bins."""
    labels, probabilities = _check_pair(labels, probabilities)
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    indices = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    error = 0.0
    for bin_index in range(n_bins):
        mask = indices == bin_index
        if not mask.any():
            continue
        gap = abs(probabilities[mask].mean() - labels[mask].mean())
        error += mask.mean() * gap
    return float(error)
