"""Grouped AUC (GAUC) — the per-user ranking metric used industrially.

Global AUC rewards separating *across* users (easy via user-level bias);
GAUC averages per-user AUCs weighted by each user's impression count,
measuring what a recommender actually controls: the ordering of items
*within* one user's feed.  Users whose impressions are all-positive or
all-negative are skipped, as is standard.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.metrics.auc import roc_auc
from repro.utils.validation import as_1d_float, as_1d_int

__all__ = ["grouped_auc"]


def grouped_auc(
    labels, scores, group_ids, min_impressions: int = 2
) -> Tuple[float, int]:
    """Impression-weighted mean of per-group AUCs.

    Parameters
    ----------
    labels:
        Binary relevance per impression.
    scores:
        Predicted scores per impression.
    group_ids:
        Group (user) id per impression.
    min_impressions:
        Groups with fewer impressions are skipped.

    Returns
    -------
    (gauc, n_groups):
        The weighted mean AUC and the number of contributing groups.

    Raises
    ------
    ValueError
        If no group has both classes with enough impressions.
    """
    labels = as_1d_float(labels, "labels")
    scores = as_1d_float(scores, "scores")
    group_ids = as_1d_int(group_ids, "group_ids")
    if not (labels.shape == scores.shape == group_ids.shape):
        raise ValueError(
            "labels, scores and group_ids must have identical shapes, got "
            f"{labels.shape}, {scores.shape}, {group_ids.shape}"
        )
    if min_impressions < 2:
        raise ValueError(f"min_impressions must be >= 2, got {min_impressions}")

    order = np.argsort(group_ids, kind="mergesort")
    sorted_groups = group_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_groups)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [group_ids.size]])

    total_weight = 0.0
    weighted_sum = 0.0
    n_groups = 0
    for start, end in zip(starts, ends):
        rows = order[start:end]
        if rows.size < min_impressions:
            continue
        group_labels = labels[rows]
        positives = group_labels.sum()
        if positives == 0 or positives == rows.size:
            continue
        auc = roc_auc(group_labels, scores[rows])
        weighted_sum += rows.size * auc
        total_weight += rows.size
        n_groups += 1

    if n_groups == 0:
        raise ValueError(
            "no group has both classes with at least "
            f"{min_impressions} impressions"
        )
    return weighted_sum / total_weight, n_groups
