"""Area under the ROC curve.

AUC is the paper's headline offline metric (Table I).  The implementation
uses the rank statistic (Mann-Whitney U) with midrank tie handling, which is
exact and O(n log n).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_float

__all__ = ["roc_auc"]


def roc_auc(labels, scores) -> float:
    """Exact AUC of ``scores`` against binary ``labels``.

    Parameters
    ----------
    labels:
        Binary ground truth (0/1), any float/int array-like.
    scores:
        Predicted ranking scores (larger = more positive).

    Returns
    -------
    float
        The probability a random positive outranks a random negative, with
        ties counted as half.

    Raises
    ------
    ValueError
        If labels are not binary or only one class is present.
    """
    labels = as_1d_float(labels, "labels")
    scores = as_1d_float(scores, "scores")
    if labels.shape != scores.shape:
        raise ValueError(
            f"labels and scores must match, got {labels.shape} vs {scores.shape}"
        )
    unique = np.unique(labels)
    if not np.isin(unique, (0.0, 1.0)).all():
        raise ValueError(f"labels must be binary 0/1, found values {unique}")
    n_positive = int(labels.sum())
    n_negative = labels.size - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError(
            f"AUC needs both classes; got {n_positive} positives and "
            f"{n_negative} negatives"
        )

    # Midranks: average rank within tied groups.
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    ranks = np.empty(scores.size, dtype=np.float64)
    position = 0
    while position < scores.size:
        tie_end = position
        while (
            tie_end + 1 < scores.size
            and sorted_scores[tie_end + 1] == sorted_scores[position]
        ):
            tie_end += 1
        midrank = 0.5 * (position + tie_end) + 1.0
        ranks[order[position : tie_end + 1]] = midrank
        position = tie_end + 1

    positive_rank_sum = ranks[labels == 1.0].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))
