"""Probability calibration: Platt scaling and isotonic regression.

Production CTR systems treat model scores as *probabilities* (bidding,
expected-value ranking), so post-hoc calibration is standard practice.
Two classic calibrators are provided:

* :class:`PlattScaler` — fits ``sigmoid(a * logit(p) + b)`` by gradient
  descent on the log-likelihood (two parameters; smooth, parametric);
* :class:`IsotonicCalibrator` — pool-adjacent-violators (PAV): the
  maximum-likelihood *monotone* step function, non-parametric.

Both preserve the score ordering (AUC is unchanged) while improving
calibration error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import as_1d_float

__all__ = ["PlattScaler", "IsotonicCalibrator"]


def _check_fit_inputs(scores, labels):
    scores = as_1d_float(scores, "scores")
    labels = as_1d_float(labels, "labels")
    if scores.shape != labels.shape:
        raise ValueError(
            f"scores and labels must match, got {scores.shape} vs {labels.shape}"
        )
    if scores.size < 2:
        raise ValueError("calibration needs at least 2 samples")
    unique = np.unique(labels)
    if not np.isin(unique, (0.0, 1.0)).all():
        raise ValueError(f"labels must be binary 0/1, found {unique}")
    return scores, labels


class PlattScaler:
    """Two-parameter logistic recalibration of probability scores."""

    def __init__(self, iterations: int = 500, lr: float = 0.1) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.lr = lr
        self.slope_: Optional[float] = None
        self.intercept_: Optional[float] = None

    @staticmethod
    def _logit(p: np.ndarray) -> np.ndarray:
        clipped = np.clip(p, 1e-7, 1 - 1e-7)
        return np.log(clipped / (1 - clipped))

    def fit(self, scores, labels) -> "PlattScaler":
        """Fit slope/intercept by gradient descent on the NLL."""
        scores, labels = _check_fit_inputs(scores, labels)
        x = self._logit(scores)
        slope, intercept = 1.0, 0.0
        n = x.size
        for _ in range(self.iterations):
            z = slope * x + intercept
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
            error = p - labels
            slope -= self.lr * float(error @ x) / n
            intercept -= self.lr * float(error.sum()) / n
        self.slope_ = slope
        self.intercept_ = intercept
        return self

    def transform(self, scores) -> np.ndarray:
        """Recalibrated probabilities."""
        if self.slope_ is None:
            raise RuntimeError("PlattScaler must be fitted before transform")
        scores = as_1d_float(scores, "scores")
        z = self.slope_ * self._logit(scores) + self.intercept_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def fit_transform(self, scores, labels) -> np.ndarray:
        """Fit then transform the same scores."""
        return self.fit(scores, labels).transform(scores)


class IsotonicCalibrator:
    """Pool-adjacent-violators monotone calibration.

    Fits the non-decreasing step function minimising squared error (which
    for binary labels coincides with the monotone maximum-likelihood
    solution), then interpolates between block centres at transform time.
    """

    def __init__(self) -> None:
        self.thresholds_: Optional[np.ndarray] = None
        self.values_: Optional[np.ndarray] = None

    def fit(self, scores, labels) -> "IsotonicCalibrator":
        """Run PAV over scores sorted ascending."""
        scores, labels = _check_fit_inputs(scores, labels)
        order = np.argsort(scores, kind="mergesort")
        x = scores[order]
        y = labels[order]

        # Blocks as (value_sum, weight, x_sum); merge while decreasing.
        block_value = list(y.astype(float))
        block_weight = [1.0] * y.size
        block_x = list(x.astype(float))
        merged_value: list = []
        merged_weight: list = []
        merged_x: list = []
        for value, weight, position in zip(block_value, block_weight, block_x):
            merged_value.append(value)
            merged_weight.append(weight)
            merged_x.append(position * weight)
            while (
                len(merged_value) > 1
                and merged_value[-2] / merged_weight[-2]
                >= merged_value[-1] / merged_weight[-1]
            ):
                value_b = merged_value.pop()
                weight_b = merged_weight.pop()
                x_b = merged_x.pop()
                merged_value[-1] += value_b
                merged_weight[-1] += weight_b
                merged_x[-1] += x_b
        self.values_ = np.array(
            [v / w for v, w in zip(merged_value, merged_weight)]
        )
        self.thresholds_ = np.array(
            [xs / w for xs, w in zip(merged_x, merged_weight)]
        )
        return self

    def transform(self, scores) -> np.ndarray:
        """Piecewise-linear interpolation of the fitted step function."""
        if self.values_ is None:
            raise RuntimeError("IsotonicCalibrator must be fitted before transform")
        scores = as_1d_float(scores, "scores")
        return np.interp(scores, self.thresholds_, self.values_)

    def fit_transform(self, scores, labels) -> np.ndarray:
        """Fit then transform the same scores."""
        return self.fit(scores, labels).transform(scores)
