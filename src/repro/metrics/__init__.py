"""Evaluation metrics: AUC, regression errors, business indicators."""

from repro.metrics.auc import roc_auc
from repro.metrics.calibration import IsotonicCalibrator, PlattScaler
from repro.metrics.gauc import grouped_auc
from repro.metrics.business import (
    QuintilePanel,
    performance_degradation,
    popularity_group_panel,
    rank_correlation,
)
from repro.metrics.classification import (
    accuracy,
    calibration_error,
    log_loss,
    precision_at_k,
)
from repro.metrics.ranking import (
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    ranking_report,
    recall_at_k,
)
from repro.metrics.regression import mae, mse, r2_score, rmse

__all__ = [
    "roc_auc",
    "IsotonicCalibrator",
    "PlattScaler",
    "grouped_auc",
    "QuintilePanel",
    "performance_degradation",
    "popularity_group_panel",
    "rank_correlation",
    "accuracy",
    "calibration_error",
    "log_loss",
    "precision_at_k",
    "mae",
    "mse",
    "r2_score",
    "rmse",
    "hit_rate_at_k",
    "mrr_at_k",
    "ndcg_at_k",
    "ranking_report",
    "recall_at_k",
]
