"""Business indicators and experiment-level summaries.

These implement the paper's evaluation constructs that are not standard ML
metrics: the performance-degradation ratio of Table I, the popularity-
quintile business panel of Table II, and ranking agreement diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.utils.validation import as_1d_float

__all__ = [
    "performance_degradation",
    "QuintilePanel",
    "popularity_group_panel",
    "rank_correlation",
]


def performance_degradation(auc_profile_only: float, auc_complete: float) -> float:
    """The paper's Table I degradation: ``(AUC_profile - AUC_complete) / AUC_complete``.

    Negative values mean the model got worse without item statistics.
    """
    if auc_complete <= 0:
        raise ValueError(f"complete-feature AUC must be positive, got {auc_complete}")
    return (auc_profile_only - auc_complete) / auc_complete


@dataclass
class QuintilePanel:
    """Per-popularity-group business indicators (Table II layout).

    Attributes
    ----------
    group_labels:
        Human-readable group names, best first (``0-20`` ... ``80-100``).
    values:
        Mapping ``(metric, day)`` → list of per-group means, best group
        first, followed by the overall average as produced by
        :func:`popularity_group_panel`.
    """

    group_labels: List[str]
    values: Dict[str, List[float]]

    def column(self, metric: str, day: int) -> List[float]:
        """Per-group means for one metric/day column."""
        key = f"{day}-day {metric}"
        try:
            return self.values[key]
        except KeyError:
            raise KeyError(
                f"no column {key!r}; available: {sorted(self.values)}"
            ) from None

    def is_monotone(self, metric: str, day: int, tolerance: float = 0.0) -> bool:
        """Whether the column decreases from best to worst group.

        The trailing ``Average`` row is excluded.  ``tolerance`` allows
        small inversions (as a fraction of the column mean) — the paper's
        own Table II has one GMV inversion.
        """
        column = np.array(self.column(metric, day))
        groups = column[:-1] if self.group_labels[-1] == "Average" else column
        slack = tolerance * groups.mean()
        return bool(np.all(np.diff(groups) <= slack))


def popularity_group_panel(
    scores: np.ndarray,
    metrics_by_day: Dict[str, Dict[int, np.ndarray]],
    n_groups: int = 5,
) -> QuintilePanel:
    """Group items by predicted popularity and average each indicator.

    Parameters
    ----------
    scores:
        Predicted popularity per item (higher = more popular).
    metrics_by_day:
        Nested mapping ``metric name → {day → per-item cumulative values}``
        (e.g. ``{"IPV": {7: ..., 14: ..., 30: ...}, ...}``).
    n_groups:
        Number of equal-size groups (5 in the paper).

    Returns
    -------
    QuintilePanel
        Group means ordered best group first, plus an ``Average`` row
        appended to every column.
    """
    scores = as_1d_float(scores, "scores")
    if n_groups < 2:
        raise ValueError(f"n_groups must be >= 2, got {n_groups}")
    if scores.size < n_groups:
        raise ValueError(
            f"need at least {n_groups} items, got {scores.size}"
        )
    order = np.argsort(scores)[::-1]
    group_assignments = np.array_split(order, n_groups)
    step = 100 // n_groups
    group_labels = [f"{step * i}-{step * (i + 1)}" for i in range(n_groups)]

    values: Dict[str, List[float]] = {}
    for metric, by_day in metrics_by_day.items():
        for day, per_item in by_day.items():
            per_item = as_1d_float(per_item, f"{metric}@{day}")
            if per_item.shape != scores.shape:
                raise ValueError(
                    f"{metric}@{day} has shape {per_item.shape}, "
                    f"expected {scores.shape}"
                )
            column = [float(per_item[group].mean()) for group in group_assignments]
            column.append(float(per_item.mean()))
            values[f"{day}-day {metric}"] = column
    return QuintilePanel(group_labels=group_labels + ["Average"], values=values)


def rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation between two score vectors.

    Used by the ablations to compare the O(1) mean-user-vector ranking with
    the exact pairwise-mean ranking.
    """
    a = as_1d_float(a, "a")
    b = as_1d_float(b, "b")
    if a.shape != b.shape:
        raise ValueError(f"inputs must match, got {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("rank correlation needs at least 2 samples")

    def _midranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="mergesort")
        ranks = np.empty(values.size, dtype=np.float64)
        sorted_values = values[order]
        position = 0
        while position < values.size:
            tie_end = position
            while (
                tie_end + 1 < values.size
                and sorted_values[tie_end + 1] == sorted_values[position]
            ):
                tie_end += 1
            ranks[order[position : tie_end + 1]] = 0.5 * (position + tie_end) + 1.0
            position = tie_end + 1
        return ranks

    rank_a = _midranks(a)
    rank_b = _midranks(b)
    rank_a -= rank_a.mean()
    rank_b -= rank_b.mean()
    denominator = np.sqrt((rank_a ** 2).sum() * (rank_b ** 2).sum())
    if denominator < 1e-24:
        return 0.0
    return float((rank_a * rank_b).sum() / denominator)
