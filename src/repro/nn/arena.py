"""Generation-stamped buffer arena for autograd scratch and gradient buffers.

Round 2 of the autograd perf work (see ``docs/performance.md``) showed that
after the sparse fast path, a slice of per-step time is allocator churn:
every backward pass allocates fresh gradient buffers, and every optimizer
step allocates fresh scratch (``m_hat``/``v_hat``, gathered rows).  The
shapes repeat exactly from step to step, so the arena keeps a free list per
``(shape, dtype)`` key and hands the same buffers back out each step
instead of going through ``np.empty``.

Pooling has a floor: numpy's allocator (and glibc behind it) already
recycles small and medium blocks in well under a microsecond, so renting
them through python-level bookkeeping is a net loss.  Buffers smaller than
``min_bytes`` bypass the pool entirely and come straight from
``np.empty`` / ``np.zeros``; only large buffers — the ones that risk an
``mmap`` round-trip and a page-fault sweep on first touch — are pooled
and generation-stamped.

Lifecycle
---------
Pooled buffers move through three states::

            rent()                    advance()
    free  ─────────►  rented (gen G) ───────────►  free (reusable)
      ▲                                                 │
      └─────────────────────────────────────────────────┘

``rent`` pops a pooled buffer (or allocates one on a miss) and stamps it
with the arena's current *generation*.  ``advance`` — called once per
training step from ``Optimizer.zero_grad`` — bumps the generation and
returns every rented buffer to the pool.  A buffer is therefore valid from
the moment it is rented until the next ``advance``; holding one across an
``advance`` is a reuse-after-free bug.  The runtime sanitizer
(:class:`repro.analysis.GradSanitizer`) records the generation of any
arena-owned buffer saved for backward and raises if the generation ended
before the gradient ran.

The arena is ambient, like the sparse-grad switch: install one with
:func:`use_arena` and hot paths pick it up through :func:`arena_empty` /
:func:`arena_zeros`, which degrade to plain numpy allocation when no arena
is active.  Arenas are strictly per-process (no locks, no threads) — see
``docs/thread_hostility.md`` for the fleet-wide discipline.

Example
-------
>>> from repro.nn.arena import BufferArena, use_arena, arena_empty
>>> arena = BufferArena()
>>> with use_arena(arena):
...     a = arena_empty((512, 128), "float64")   # fresh allocation
...     arena.advance()                          # a returns to the pool
...     b = arena_empty((512, 128), "float64")   # same buffer, recycled
>>> a is b
True
>>> arena.owns(arena_empty((4,), "float64"))     # below the pooling floor
False
"""

from __future__ import annotations

from math import prod
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BufferArena",
    "use_arena",
    "get_active_arena",
    "arena_empty",
    "arena_zeros",
]

# Pool only buffers at least this large.  Small/medium blocks are served
# faster by numpy's own caching allocator than by python bookkeeping; the
# crossover measured on the bench workloads sits around tens of KB.
DEFAULT_MIN_BYTES = 32 * 1024


class BufferArena:
    """A pool of reusable numpy buffers keyed by ``(shape, dtype)``.

    Parameters
    ----------
    max_buffers_per_key:
        Cap on pooled buffers per shape/dtype key; rentals beyond the cap
        are simply dropped back to the allocator at ``advance`` time so a
        pathological step cannot pin unbounded memory.
    min_bytes:
        Pooling floor: requests smaller than this come straight from
        ``np.empty``/``np.zeros`` with no bookkeeping (and are therefore
        not generation-stamped).
    """

    __slots__ = (
        "max_buffers_per_key",
        "min_bytes",
        "generation",
        "_free",
        "_rented",
        "_generations",
        "reuses",
        "fresh_allocations",
        "unpooled",
        "dropped",
    )

    def __init__(
        self,
        max_buffers_per_key: int = 64,
        min_bytes: int = DEFAULT_MIN_BYTES,
    ) -> None:
        self.max_buffers_per_key = int(max_buffers_per_key)
        self.min_bytes = int(min_bytes)
        self.generation = 0
        self._free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}
        self._rented: List[Tuple[Tuple[Tuple[int, ...], np.dtype], np.ndarray]] = []
        # id(buffer) -> generation it was rented under.  Entries live as
        # long as the buffer is pooled or rented, so ids stay unambiguous.
        self._generations: Dict[int, int] = {}
        self.reuses = 0
        self.fresh_allocations = 0
        self.unpooled = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Renting
    # ------------------------------------------------------------------
    def rent(self, shape, dtype) -> np.ndarray:
        """Return a buffer of ``shape``/``dtype`` valid until :meth:`advance`.

        Contents are uninitialised (like ``np.empty``).  Requests below
        ``min_bytes`` are unpooled: plain ``np.empty`` with no stamp.
        """
        dtype = np.dtype(dtype)
        if type(shape) is not tuple:
            shape = tuple(shape)
        if prod(shape) * dtype.itemsize < self.min_bytes:
            self.unpooled += 1
            return np.empty(shape, dtype=dtype)
        key = (shape, dtype)
        stack = self._free.get(key)
        if stack:
            buffer = stack.pop()
            self.reuses += 1
        else:
            buffer = np.empty(shape, dtype=dtype)
            self.fresh_allocations += 1
        self._rented.append((key, buffer))
        self._generations[id(buffer)] = self.generation
        return buffer

    def zeros(self, shape, dtype) -> np.ndarray:
        """Like :meth:`rent`, but zero-filled.

        Below the pooling floor this is plain ``np.zeros`` — calloc'd
        zero pages beat an explicit ``fill(0)`` sweep.
        """
        dtype = np.dtype(dtype)
        if type(shape) is not tuple:
            shape = tuple(shape)
        if prod(shape) * dtype.itemsize < self.min_bytes:
            self.unpooled += 1
            return np.zeros(shape, dtype=dtype)
        buffer = self.rent(shape, dtype)
        buffer.fill(0)
        return buffer

    @property
    def rentals(self) -> int:
        """Total pooled rentals served (reuses + fresh allocations)."""
        return self.reuses + self.fresh_allocations

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def advance(self) -> int:
        """End the current generation: recycle every rented buffer.

        Called once per training step (from ``Optimizer.zero_grad``).
        Returns the new generation number.
        """
        self.generation += 1
        for key, buffer in self._rented:
            stack = self._free.setdefault(key, [])
            if len(stack) < self.max_buffers_per_key:
                stack.append(buffer)
            else:
                self.dropped += 1
                self._generations.pop(id(buffer), None)
        self._rented.clear()
        self._publish_metrics()
        return self.generation

    def reset(self) -> None:
        """Drop every pooled and rented buffer (frees the memory)."""
        self._free.clear()
        self._rented.clear()
        self._generations.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def generation_of(self, array: np.ndarray) -> Optional[int]:
        """Generation ``array`` was last rented under, or ``None``.

        Only recognises whole rented buffers (not views into them) — the
        sanctioned usage pattern is to hand the rented array around as-is.
        Unpooled (below-floor) buffers are never stamped.
        """
        return self._generations.get(id(array))

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is a buffer managed by this arena."""
        return id(array) in self._generations

    @property
    def pooled_bytes(self) -> int:
        """Bytes currently held in free lists."""
        return sum(
            buffer.nbytes for stack in self._free.values() for buffer in stack
        )

    @property
    def pooled_buffers(self) -> int:
        return sum(len(stack) for stack in self._free.values())

    def stats(self) -> Dict[str, int]:
        """Counters for benchmark reports and telemetry."""
        return {
            "generation": self.generation,
            "rentals": self.rentals,
            "reuses": self.reuses,
            "fresh_allocations": self.fresh_allocations,
            "unpooled": self.unpooled,
            "dropped": self.dropped,
            "pooled_buffers": self.pooled_buffers,
            "pooled_bytes": self.pooled_bytes,
        }

    def _publish_metrics(self) -> None:
        """Push arena gauges into the active metrics registry, if any.

        Runs once per ``advance`` (one training step), so the registry
        lookup is off the per-rental hot path.
        """
        from repro.obs.metrics import get_active_registry

        registry = get_active_registry()
        if registry is None:
            return
        registry.gauge("arena.generation").set(float(self.generation))
        registry.gauge("arena.pooled_bytes").set(float(self.pooled_bytes))
        registry.gauge("arena.pooled_buffers").set(float(self.pooled_buffers))
        registry.gauge("arena.rentals").set(float(self.rentals))
        registry.gauge("arena.reuses").set(float(self.reuses))
        registry.gauge("arena.fresh_allocations").set(float(self.fresh_allocations))

    def __repr__(self) -> str:
        return (
            f"BufferArena(generation={self.generation}, "
            f"pooled={self.pooled_buffers}, rentals={self.rentals}, "
            f"reuses={self.reuses})"
        )


# Ambient arena, scoped by ``use_arena`` like the sparse-grad switch.
_ARENA: Optional[BufferArena] = None


class use_arena:
    """Context manager installing ``arena`` as the process-wide arena.

    >>> with use_arena(BufferArena()):
    ...     ...  # backward passes and optimizer steps rent buffers
    """

    def __init__(self, arena: Optional[BufferArena]) -> None:
        self._arena = arena

    def __enter__(self) -> Optional[BufferArena]:
        global _ARENA
        self._previous = _ARENA
        _ARENA = self._arena
        return self._arena

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _ARENA
        _ARENA = self._previous


def get_active_arena() -> Optional[BufferArena]:
    """The ambient :class:`BufferArena`, or ``None`` when pooling is off."""
    return _ARENA


def arena_empty(shape, dtype) -> np.ndarray:
    """Rent an uninitialised buffer from the active arena (or ``np.empty``)."""
    if _ARENA is not None:
        return _ARENA.rent(shape, dtype)
    return np.empty(shape, dtype=dtype)


def arena_zeros(shape, dtype) -> np.ndarray:
    """Rent a zero-filled buffer from the active arena (or ``np.zeros``)."""
    if _ARENA is not None:
        return _ARENA.zeros(shape, dtype)
    return np.zeros(shape, dtype=dtype)
