"""Optimizer base class."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

import numpy as np

from repro.nn.arena import get_active_arena
from repro.nn.module import Parameter
from repro.nn.sparse import SparseGrad

__all__ = ["Optimizer"]


class Optimizer:
    """Base class for gradient-based optimizers.

    Parameters are deduplicated by identity at construction so a parameter
    shared between two towers (the ATNN shared-embedding trick) receives a
    single, correctly accumulated update per step.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        unique: Dict[int, Parameter] = {}
        for param in parameters:
            if not isinstance(param, Parameter):
                raise TypeError(
                    f"optimizer expects Parameter instances, got {type(param).__name__}"
                )
            unique.setdefault(id(param), param)
        self.parameters: List[Parameter] = list(unique.values())
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0
        # Reused scratch for weight decay (see _decayed_grad); deliberately
        # not part of the serialisable state.
        self._wd_buffers: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter.

        Also ends the active :class:`~repro.nn.arena.BufferArena`
        generation, recycling every buffer the previous step's backward
        pass and optimizer update rented.  This is the one safe point in
        the step cycle: gradients have just been dropped, no backward
        closure from the new step has run yet, and forward activations
        are never arena-backed.
        """
        for param in self.parameters:
            param.zero_grad()
        arena = get_active_arena()
        if arena is not None:
            arena.advance()

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        self.step_count += 1
        for param in self.parameters:
            if param.grad is None:
                continue
            self._update(param)

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError

    def _decayed_grad(self, param: Parameter, weight_decay: float) -> np.ndarray:
        """``param.grad + weight_decay * param.data`` without fresh allocations.

        Returns ``param.grad`` untouched when ``weight_decay`` is zero;
        otherwise writes into a per-parameter scratch buffer that is reused
        across steps (the naive expression allocates two full-size
        temporaries per parameter per step).
        """
        grad = param.grad
        if not weight_decay:
            return grad
        key = id(param)
        buffer = self._wd_buffers.get(key)
        if (
            buffer is None
            or buffer.shape != param.data.shape
            or buffer.dtype != param.data.dtype
        ):
            buffer = self._wd_buffers[key] = np.empty_like(param.data)
        np.multiply(param.data, weight_decay, out=buffer)
        buffer += grad
        return buffer

    # ------------------------------------------------------------------
    # State (de)serialization for resumable training
    # ------------------------------------------------------------------
    # Subclasses list their per-parameter buffer dicts here (each maps
    # id(param) -> ndarray or scalar).
    _STATE_BUFFERS: tuple = ()

    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimizer state, keyed by parameter *position*.

        Positions refer to this optimizer's (deduplicated) parameter
        order, so the state can be restored into a freshly constructed
        optimizer over the same model.
        """
        buffers: Dict[str, Dict[int, Any]] = {}
        for name in self._STATE_BUFFERS:
            store = getattr(self, name)
            by_position = {}
            for position, param in enumerate(self.parameters):
                if id(param) in store:
                    value = store[id(param)]
                    by_position[position] = (
                        value.copy() if isinstance(value, np.ndarray) else value
                    )
            buffers[name] = by_position
        return {"lr": self.lr, "step_count": self.step_count, "buffers": buffers}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state produced by :meth:`state_dict`.

        Raises
        ------
        KeyError
            If a recorded buffer name does not exist on this optimizer.
        IndexError
            If a recorded position exceeds this optimizer's parameters.
        """
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])
        for name, by_position in state["buffers"].items():
            if name not in self._STATE_BUFFERS:
                raise KeyError(
                    f"optimizer has no state buffer {name!r}; "
                    f"expected one of {self._STATE_BUFFERS}"
                )
            store = getattr(self, name)
            store.clear()
            for position, value in by_position.items():
                position = int(position)
                if position >= len(self.parameters):
                    raise IndexError(
                        f"state refers to parameter #{position} but optimizer "
                        f"has {len(self.parameters)}"
                    )
                param = self.parameters[position]
                store[id(param)] = (
                    value.copy() if isinstance(value, np.ndarray) else value
                )

    # ------------------------------------------------------------------
    # Utilities shared by subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def clip_gradients(parameters: Iterable[Parameter], max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm, useful for monitoring training
        stability of the adversarial game.  Row-sparse gradients contribute
        only their touched rows to the norm and are scaled in place without
        densifying.
        """
        params = [p for p in parameters if p.grad is not None]
        total = 0.0
        for p in params:
            grad = p.grad
            if isinstance(grad, SparseGrad):
                rows = grad.compact().rows
                total += float(np.einsum("ij,ij->", rows, rows))
            else:
                total += float((grad ** 2).sum())
        total = float(np.sqrt(total))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for param in params:
                param.grad *= scale
        return total
