"""AdaGrad optimizer — well suited to sparse embedding gradients."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer
from repro.nn.sparse import SparseGrad

__all__ = ["AdaGrad"]


class AdaGrad(Optimizer):
    """Per-coordinate learning rates from accumulated squared gradients.

    Row-sparse gradients take a lazy row-wise path that is *exactly*
    equivalent to the dense update: AdaGrad has no decay, so rows with zero
    gradient leave both the accumulator and the weights untouched.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        eps: float = 1e-10,
        initial_accumulator: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if initial_accumulator < 0:
            raise ValueError(
                f"initial_accumulator must be non-negative, got {initial_accumulator}"
            )
        self.eps = eps
        self.initial_accumulator = initial_accumulator
        self._accumulator: Dict[int, np.ndarray] = {}

    _STATE_BUFFERS = ("_accumulator",)

    def _update(self, param: Parameter) -> None:
        if isinstance(param.grad, SparseGrad):
            self._update_sparse(param, param.grad)
            return
        key = id(param)
        acc = self._accumulator.get(key)
        if acc is None:
            acc = self._accumulator[key] = np.full_like(
                param.data, self.initial_accumulator
            )
        grad = param.grad
        acc += grad * grad
        param.data -= self.lr * grad / (np.sqrt(acc) + self.eps)
        param.bump_version()

    def _update_sparse(self, param: Parameter, grad: SparseGrad) -> None:
        """Row-wise lazy update — exactly matches the dense step."""
        compacted = grad.compact()
        idx, rows = compacted.indices, compacted.rows
        if idx.size == 0:
            return
        key = id(param)
        acc = self._accumulator.get(key)
        if acc is None:
            acc = self._accumulator[key] = np.full_like(
                param.data, self.initial_accumulator
            )
        acc_rows = acc[idx]  # fancy indexing copies
        acc_rows += rows * rows
        acc[idx] = acc_rows
        param.data[idx] -= self.lr * rows / (np.sqrt(acc_rows) + self.eps)
        param.bump_version()
