"""AdaGrad optimizer — well suited to sparse embedding gradients."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer

__all__ = ["AdaGrad"]


class AdaGrad(Optimizer):
    """Per-coordinate learning rates from accumulated squared gradients."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        eps: float = 1e-10,
        initial_accumulator: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if initial_accumulator < 0:
            raise ValueError(
                f"initial_accumulator must be non-negative, got {initial_accumulator}"
            )
        self.eps = eps
        self.initial_accumulator = initial_accumulator
        self._accumulator: Dict[int, np.ndarray] = {}

    _STATE_BUFFERS = ("_accumulator",)

    def _update(self, param: Parameter) -> None:
        key = id(param)
        acc = self._accumulator.get(key)
        if acc is None:
            acc = np.full_like(param.data, self.initial_accumulator)
        acc = acc + param.grad * param.grad
        self._accumulator[key] = acc
        param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)
