"""Learning-rate schedulers operating on an optimizer's ``lr`` attribute."""

from __future__ import annotations

from repro.nn.optim.optimizer import Optimizer

__all__ = ["StepDecay", "ExponentialDecay", "CosineDecay", "WarmupWrapper"]


class _Scheduler:
    """Base class tracking the epoch counter and the initial rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._rate(self.epoch)
        return self.optimizer.lr

    def _rate(self, epoch: int) -> float:
        raise NotImplementedError


class StepDecay(_Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def _rate(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialDecay(_Scheduler):
    """Multiply the rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def _rate(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


class CosineDecay(_Scheduler):
    """Cosine annealing from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _rate(self, epoch: int) -> float:
        import math

        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupWrapper(_Scheduler):
    """Linear warmup for ``warmup_epochs`` then delegate to ``inner``."""

    def __init__(self, inner: _Scheduler, warmup_epochs: int) -> None:
        super().__init__(inner.optimizer)
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be >= 0, got {warmup_epochs}")
        self.inner = inner
        self.warmup_epochs = warmup_epochs

    def _rate(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs and self.warmup_epochs > 0:
            return self.base_lr * epoch / self.warmup_epochs
        return self.inner._rate(epoch - self.warmup_epochs)
