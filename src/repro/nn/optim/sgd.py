"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Vanilla / momentum SGD.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables the velocity buffer).
    weight_decay:
        L2 penalty coefficient added to the gradient.
    nesterov:
        Use Nesterov momentum (requires ``momentum > 0``).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    _STATE_BUFFERS = ("_velocity",)

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[id(param)] = velocity
            grad = grad + self.momentum * velocity if self.nesterov else velocity
        param.data -= self.lr * grad
