"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer
from repro.nn.sparse import SparseGrad

__all__ = ["SGD"]


class SGD(Optimizer):
    """Vanilla / momentum SGD.

    When a parameter carries a row-sparse gradient (embedding tables), the
    update is applied lazily to the touched rows only.  Without momentum or
    weight decay this matches the dense update exactly (untouched rows have
    zero gradient).  With momentum, the velocity of untouched rows is
    *frozen* rather than decayed — the standard lazy-momentum semantics;
    with weight decay, decay is applied only to touched rows.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables the velocity buffer).
    weight_decay:
        L2 penalty coefficient added to the gradient.
    nesterov:
        Use Nesterov momentum (requires ``momentum > 0``).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    _STATE_BUFFERS = ("_velocity",)

    def _update(self, param: Parameter) -> None:
        if isinstance(param.grad, SparseGrad):
            self._update_sparse(param, param.grad)
            return
        grad = self._decayed_grad(param, self.weight_decay)
        if self.momentum:
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = self._velocity[id(param)] = np.zeros_like(param.data)
            velocity *= self.momentum
            velocity += grad
            grad = grad + self.momentum * velocity if self.nesterov else velocity
        param.data -= self.lr * grad
        param.bump_version()

    def _update_sparse(self, param: Parameter, grad: SparseGrad) -> None:
        """Row-wise lazy update on the touched rows only."""
        compacted = grad.compact()
        idx, rows = compacted.indices, compacted.rows
        if idx.size == 0:
            return
        if self.weight_decay:
            rows = rows + self.weight_decay * param.data[idx]
        if self.momentum:
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = self._velocity[id(param)] = np.zeros_like(param.data)
            v_rows = velocity[idx]  # fancy indexing copies
            v_rows *= self.momentum
            v_rows += rows
            velocity[idx] = v_rows
            rows = rows + self.momentum * v_rows if self.nesterov else v_rows
        param.data[idx] -= self.lr * rows
        param.bump_version()
