"""Adam optimizer (Kingma & Ba, 2015) with bias correction."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adaptive moment estimation — the workhorse optimizer of the repo.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        Learning rate.
    betas:
        Exponential decay rates for the first and second moment estimates.
    eps:
        Denominator fuzz factor.
    weight_decay:
        L2 penalty coefficient added to the gradient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    _STATE_BUFFERS = ("_m", "_v", "_t")

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            self._v[key] = np.zeros_like(param.data)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
