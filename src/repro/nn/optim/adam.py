"""Adam optimizer (Kingma & Ba, 2015) with bias correction."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.nn.arena import arena_empty
from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer
from repro.nn.sparse import SparseGrad

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adaptive moment estimation — the workhorse optimizer of the repo.

    Parameters with row-sparse gradients (embedding tables) receive *lazy*
    updates: first/second moments and weights are updated only on the rows
    the batch touched, with bias correction driven by the per-parameter
    step counter.  This matches the dense update exactly for rows whose
    gradient was zero in every step so far (their moments are zero), and
    for rows touched on every step.  A row touched at step ``s`` and then
    skipped diverges from dense Adam, which would keep decaying its
    momentum and applying residual updates; lazy Adam freezes it instead —
    the standard trade-off (cf. TensorFlow's ``LazyAdam``) that makes
    large-vocabulary training tractable.  With ``weight_decay > 0`` the
    decay is likewise applied only to touched rows.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        Learning rate.
    betas:
        Exponential decay rates for the first and second moment estimates.
    eps:
        Denominator fuzz factor.
    weight_decay:
        L2 penalty coefficient added to the gradient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    _STATE_BUFFERS = ("_m", "_v", "_t")

    def _init_state(self, param: Parameter) -> None:
        key = id(param)
        if key not in self._m:
            self._m[key] = np.zeros_like(param.data)
            self._v[key] = np.zeros_like(param.data)
            self._t[key] = 0

    def _update(self, param: Parameter) -> None:
        if isinstance(param.grad, SparseGrad):
            self._update_sparse(param, param.grad)
            return
        grad = self._decayed_grad(param, self.weight_decay)
        key = id(param)
        self._init_state(param)
        m = self._m[key]
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]
        # In-place moment updates over arena scratch: the dense sweep is
        # bandwidth-bound, so every full-size temporary matters.  The
        # operation order matches the naive expressions exactly (scalar
        # multiplies commuted, which is bit-exact), so arena-on and
        # arena-off runs produce identical weights.
        scratch = arena_empty(grad.shape, grad.dtype)
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=scratch)
        m += scratch
        v *= self.beta2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1 - self.beta2
        v += scratch
        m_hat = arena_empty(m.shape, m.dtype)
        np.divide(m, 1 - self.beta1 ** t, out=m_hat)
        v_hat = arena_empty(v.shape, v.dtype)
        np.divide(v, 1 - self.beta2 ** t, out=v_hat)
        np.sqrt(v_hat, out=v_hat)
        v_hat += self.eps
        m_hat *= self.lr
        m_hat /= v_hat
        param.data -= m_hat
        param.bump_version()

    def _update_sparse(self, param: Parameter, grad: SparseGrad) -> None:
        """Lazy Adam: moments and weights advance only on touched rows."""
        compacted = grad.compact()
        idx, rows = compacted.indices, compacted.rows
        if idx.size == 0:
            return
        if self.weight_decay:
            decayed = arena_empty(rows.shape, rows.dtype)
            np.take(param.data, idx, axis=0, out=decayed)
            decayed *= self.weight_decay
            decayed += rows
            rows = decayed
        key = id(param)
        self._init_state(param)
        self._t[key] += 1
        t = self._t[key]
        m = self._m[key]
        v = self._v[key]
        # Gather/scatter over arena scratch (np.take with out= instead of
        # fancy-index copies); operation order is bit-identical to the
        # naive version, see _update.
        scratch = arena_empty(rows.shape, rows.dtype)
        m_rows = arena_empty(rows.shape, rows.dtype)
        np.take(m, idx, axis=0, out=m_rows)
        m_rows *= self.beta1
        np.multiply(rows, 1 - self.beta1, out=scratch)
        m_rows += scratch
        m[idx] = m_rows
        v_rows = arena_empty(rows.shape, rows.dtype)
        np.take(v, idx, axis=0, out=v_rows)
        v_rows *= self.beta2
        np.multiply(rows, rows, out=scratch)
        scratch *= 1 - self.beta2
        v_rows += scratch
        v[idx] = v_rows
        np.divide(m_rows, 1 - self.beta1 ** t, out=scratch)  # m_hat
        v_hat = arena_empty(rows.shape, rows.dtype)
        np.divide(v_rows, 1 - self.beta2 ** t, out=v_hat)
        np.sqrt(v_hat, out=v_hat)
        v_hat += self.eps
        scratch *= self.lr
        scratch /= v_hat
        param.data[idx] -= scratch
        param.bump_version()
