"""FTRL-Proximal optimizer (McMahan et al., KDD 2013).

Follow-The-Regularized-Leader with per-coordinate learning rates and L1/L2
regularisation.  Included because the paper's related-work baseline family
(LR / FTRL) is part of the CTR-prediction lineage it compares against; the
repo's logistic-regression baseline uses it.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer
from repro.nn.sparse import SparseGrad

__all__ = ["FTRL"]


class FTRL(Optimizer):
    """FTRL-Proximal with L1-induced sparsity.

    Row-sparse gradients update ``z``/``n`` and re-solve the proximal step
    only on the touched rows, which matches the dense update exactly for
    every row that has ever been touched (zero-gradient rows leave ``z``
    and ``n`` unchanged).  The one divergence: dense FTRL's closed-form
    assignment rewrites *never-touched* rows to the proximal solution of
    ``z = 0`` (i.e. zero), whereas the lazy path leaves their
    initialization in place until they are first touched.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        The ``alpha`` per-coordinate learning-rate scale.
    beta:
        Smoothing term in the per-coordinate rate.
    l1:
        L1 regularisation strength (drives exact zeros).
    l2:
        L2 regularisation strength.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        beta: float = 1.0,
        l1: float = 0.0,
        l2: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if l1 < 0 or l2 < 0:
            raise ValueError(f"regularisation strengths must be >= 0, got l1={l1}, l2={l2}")
        self.beta = beta
        self.l1 = l1
        self.l2 = l2
        self._z: Dict[int, np.ndarray] = {}
        self._n: Dict[int, np.ndarray] = {}

    _STATE_BUFFERS = ("_z", "_n")

    def _update(self, param: Parameter) -> None:
        if isinstance(param.grad, SparseGrad):
            self._update_sparse(param, param.grad)
            return
        key = id(param)
        z = self._z.get(key)
        if z is None:
            z = np.zeros_like(param.data)
            self._n[key] = np.zeros_like(param.data)
        n = self._n[key]
        grad = param.grad
        sigma = (np.sqrt(n + grad * grad) - np.sqrt(n)) / self.lr
        z = z + grad - sigma * param.data
        n = n + grad * grad
        self._z[key] = z
        self._n[key] = n
        # Closed-form proximal step.
        mask = np.abs(z) > self.l1
        denominator = (self.beta + np.sqrt(n)) / self.lr + self.l2
        param.data[...] = np.where(
            mask, -(z - np.sign(z) * self.l1) / denominator, 0.0
        )
        param.bump_version()

    def _update_sparse(self, param: Parameter, grad: SparseGrad) -> None:
        """Lazy FTRL: z/n and the proximal step advance on touched rows only."""
        compacted = grad.compact()
        idx, rows = compacted.indices, compacted.rows
        if idx.size == 0:
            return
        key = id(param)
        z = self._z.get(key)
        if z is None:
            z = self._z[key] = np.zeros_like(param.data)
            self._n[key] = np.zeros_like(param.data)
        n = self._n[key]
        n_rows = n[idx]  # fancy indexing copies
        w_rows = param.data[idx]
        sigma = (np.sqrt(n_rows + rows * rows) - np.sqrt(n_rows)) / self.lr
        z_rows = z[idx]
        z_rows += rows - sigma * w_rows
        z[idx] = z_rows
        n_rows += rows * rows
        n[idx] = n_rows
        mask = np.abs(z_rows) > self.l1
        denominator = (self.beta + np.sqrt(n_rows)) / self.lr + self.l2
        param.data[idx] = np.where(
            mask, -(z_rows - np.sign(z_rows) * self.l1) / denominator, 0.0
        )
        param.bump_version()
