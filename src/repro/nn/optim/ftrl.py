"""FTRL-Proximal optimizer (McMahan et al., KDD 2013).

Follow-The-Regularized-Leader with per-coordinate learning rates and L1/L2
regularisation.  Included because the paper's related-work baseline family
(LR / FTRL) is part of the CTR-prediction lineage it compares against; the
repo's logistic-regression baseline uses it.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer

__all__ = ["FTRL"]


class FTRL(Optimizer):
    """FTRL-Proximal with L1-induced sparsity.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        The ``alpha`` per-coordinate learning-rate scale.
    beta:
        Smoothing term in the per-coordinate rate.
    l1:
        L1 regularisation strength (drives exact zeros).
    l2:
        L2 regularisation strength.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        beta: float = 1.0,
        l1: float = 0.0,
        l2: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if l1 < 0 or l2 < 0:
            raise ValueError(f"regularisation strengths must be >= 0, got l1={l1}, l2={l2}")
        self.beta = beta
        self.l1 = l1
        self.l2 = l2
        self._z: Dict[int, np.ndarray] = {}
        self._n: Dict[int, np.ndarray] = {}

    _STATE_BUFFERS = ("_z", "_n")

    def _update(self, param: Parameter) -> None:
        key = id(param)
        z = self._z.get(key)
        if z is None:
            z = np.zeros_like(param.data)
            self._n[key] = np.zeros_like(param.data)
        n = self._n[key]
        grad = param.grad
        sigma = (np.sqrt(n + grad * grad) - np.sqrt(n)) / self.lr
        z = z + grad - sigma * param.data
        n = n + grad * grad
        self._z[key] = z
        self._n[key] = n
        # Closed-form proximal step.
        mask = np.abs(z) > self.l1
        denominator = (self.beta + np.sqrt(n)) / self.lr + self.l2
        param.data[...] = np.where(
            mask, -(z - np.sign(z) * self.l1) / denominator, 0.0
        )
