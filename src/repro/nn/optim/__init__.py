"""Optimizers and learning-rate schedulers."""

from repro.nn.optim.adagrad import AdaGrad
from repro.nn.optim.adam import Adam
from repro.nn.optim.ftrl import FTRL
from repro.nn.optim.optimizer import Optimizer
from repro.nn.optim.schedulers import (
    CosineDecay,
    ExponentialDecay,
    StepDecay,
    WarmupWrapper,
)
from repro.nn.optim.sgd import SGD

__all__ = [
    "AdaGrad",
    "Adam",
    "FTRL",
    "Optimizer",
    "SGD",
    "CosineDecay",
    "ExponentialDecay",
    "StepDecay",
    "WarmupWrapper",
]
