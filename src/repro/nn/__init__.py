"""A from-scratch neural-network library over numpy.

Provides the tensors, layers, losses and optimizers needed to implement the
ATNN paper without an external deep-learning framework.
"""

from repro.nn import init, layers, losses, optim
from repro.nn.arena import (
    BufferArena,
    arena_empty,
    arena_zeros,
    get_active_arena,
    use_arena,
)
from repro.nn.fusion import FusionReport, fuse, fusion_hits, record_fusion_hit
from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.sparse import SparseGrad, sparse_grads_enabled, use_sparse_grads
from repro.nn.tensor import (
    Tensor,
    concat,
    default_dtype,
    embedding_lookup,
    fused_cross,
    fused_embedding_bag,
    fused_linear_relu,
    fused_mlp,
    get_active_sanitizer,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_active_sanitizer,
    set_default_dtype,
    stack,
)

__all__ = [
    "init",
    "layers",
    "losses",
    "optim",
    "BufferArena",
    "arena_empty",
    "arena_zeros",
    "get_active_arena",
    "use_arena",
    "FusionReport",
    "fuse",
    "fusion_hits",
    "record_fusion_hit",
    "fused_cross",
    "fused_embedding_bag",
    "fused_linear_relu",
    "fused_mlp",
    "check_gradients",
    "numerical_gradient",
    "Module",
    "ModuleList",
    "Parameter",
    "SparseGrad",
    "sparse_grads_enabled",
    "use_sparse_grads",
    "Tensor",
    "concat",
    "default_dtype",
    "embedding_lookup",
    "get_active_sanitizer",
    "get_default_dtype",
    "is_grad_enabled",
    "no_grad",
    "set_active_sanitizer",
    "set_default_dtype",
    "stack",
]
