"""Loss functions used by the ATNN framework.

The paper defines three CTR-side losses and two regression losses:

* ``L_i`` — binary cross-entropy of the encoder-path CTR prediction,
* ``L_g`` — binary cross-entropy of the generator-path CTR prediction,
* ``L_s`` — the adversarial similarity loss ``mean((1 - s)^2)`` where ``s``
  is the similarity between generated and encoded item vectors,
* squared-error losses for the multi-task VpPV / GMV heads (Section V).

All functions take and return :class:`~repro.nn.tensor.Tensor` so they can
sit inside the autograd graph.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mean_squared_error",
    "mean_absolute_error",
    "cosine_similarity",
    "similarity_loss",
    "log_softmax",
    "in_batch_softmax_loss",
]

_EPS = 1e-12
# float32 cannot represent 1 - 1e-12 (it rounds to 1.0, sending log(1-p) to
# -inf), so the probability clip must be wider in single precision.
_EPS_F32 = 1e-7


def _clip_eps(dtype: np.dtype) -> float:
    return _EPS_F32 if np.dtype(dtype) == np.float32 else _EPS


def binary_cross_entropy(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy of probabilities against {0,1} targets.

    Implements the paper's ``L_i`` / ``L_g``::

        L = -(1/N) * sum(y * log(p) + (1 - y) * log(1 - p))
    """
    targets = np.asarray(targets, dtype=predictions.data.dtype).reshape(
        predictions.shape
    )
    eps = _clip_eps(predictions.data.dtype)
    clipped = predictions.clip(eps, 1.0 - eps)
    y = Tensor(targets)
    loss = -(y * clipped.log() + (1.0 - y) * (1.0 - clipped).log())
    return loss.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable BCE taking raw logits.

    Uses ``max(z, 0) - z*y + log(1 + exp(-|z|))`` which avoids overflow for
    large-magnitude logits.  Runs as a single fused tape node
    (``Tensor._fused_bce_logits``): the forward applies the identical
    elementwise sequence the previous composed chain did, so loss values
    are unchanged, and the backward is the closed-form ``sigmoid(z) - y``
    in one pass instead of nine node closures.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype).reshape(logits.shape)
    return Tensor._fused_bce_logits(logits, targets)


def mean_squared_error(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error — the multi-task GMV / VpPV training loss."""
    targets = np.asarray(targets, dtype=predictions.data.dtype).reshape(
        predictions.shape
    )
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()


def mean_absolute_error(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error (the paper's offline evaluation metric)."""
    targets = np.asarray(targets, dtype=predictions.data.dtype).reshape(
        predictions.shape
    )
    return (predictions - Tensor(targets)).abs().mean()


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    Uses the max-shift trick; the shift is detached (its gradient is a
    constant offset that cancels in the softmax).
    """
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    shifted = logits - shift
    log_normaliser = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_normaliser


def in_batch_softmax_loss(
    user_vectors: Tensor,
    item_vectors: Tensor,
    temperature: float = 1.0,
    log_sampling_prob: "np.ndarray" = None,
) -> Tensor:
    """Sampled-softmax retrieval loss with in-batch negatives.

    Standard two-tower retrieval training (Yi et al., RecSys 2019 — the
    paper's reference [15]): within a batch of matched (user, item) pairs,
    every other item serves as a negative; the loss is the cross-entropy
    of picking the matched item under a softmax over scaled dot products.

    Parameters
    ----------
    user_vectors / item_vectors:
        Row-aligned ``(batch, dim)`` tensors of positive pairs.
    temperature:
        Softmax temperature (smaller = sharper).
    log_sampling_prob:
        Optional per-row log sampling probability of each batch item.
        When given, it is subtracted from that item's column of logits —
        the sampling-bias correction of Yi et al.: popular items appear
        as in-batch negatives more often, which otherwise unfairly
        suppresses their scores.
    """
    if user_vectors.shape != item_vectors.shape:
        raise ValueError(
            f"user and item vectors must match, got "
            f"{user_vectors.shape} vs {item_vectors.shape}"
        )
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scores = (user_vectors @ item_vectors.T) * (1.0 / temperature)
    if log_sampling_prob is not None:
        correction = np.asarray(log_sampling_prob, dtype=user_vectors.data.dtype)
        if correction.shape != (user_vectors.shape[0],):
            raise ValueError(
                f"log_sampling_prob must have shape ({user_vectors.shape[0]},), "
                f"got {correction.shape}"
            )
        scores = scores - Tensor(correction[None, :])
    log_probabilities = log_softmax(scores, axis=-1)
    batch_size = user_vectors.shape[0]
    diagonal = log_probabilities[np.arange(batch_size), np.arange(batch_size)]
    return -diagonal.mean()


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise cosine similarity of two ``(batch, dim)`` tensors."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    dot = (a * b).sum(axis=-1)
    norm_a = ((a * a).sum(axis=-1) + eps).sqrt()
    norm_b = ((b * b).sum(axis=-1) + eps).sqrt()
    return dot / (norm_a * norm_b)


def similarity_loss(generated: Tensor, encoded: Tensor) -> Tensor:
    """The paper's ``L_s = mean((1 - s)^2)`` adversarial similarity loss.

    ``s`` is the cosine similarity between the generator's item vector and
    the item encoder's item vector.  Minimising ``L_s`` pulls the generated
    vector toward the encoder's vector; the encoder path (trained on the CTR
    objective) plays the discriminating role of keeping the target vectors
    informative.

    The encoder output is treated as the *target*: gradients do not flow
    into the encoder through this loss (mirroring the alternating
    optimisation of Algorithm 1, where the ``L_g + λ·L_s`` step updates the
    generator while the encoder was updated in the preceding ``L_i`` step).
    """
    similarity = cosine_similarity(generated, encoded.detach())
    deviation = 1.0 - similarity
    return (deviation * deviation).mean()
