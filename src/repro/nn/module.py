"""Module and parameter abstractions for the autograd engine.

A :class:`Module` owns :class:`Parameter` tensors and child modules, mirrors
the familiar PyTorch/Keras layering discipline, and supports recursive
parameter collection, train/eval mode switching and state (de)serialization.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimisation, state
    saving and mode switching.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module (used for module lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively.

        A parameter object shared between two submodules (the paper's shared
        embedding trick) is yielded once per registration site; callers that
        need uniqueness should deduplicate by identity, as
        :meth:`parameters` does.
        """
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return the unique parameters of this module tree."""
        seen: Dict[int, Parameter] = {}
        for _, param in self.named_parameters():
            seen.setdefault(id(param), param)
        return list(seen.values())

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(p.size for p in self.parameters())

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, this module first.

        The root is yielded under ``prefix`` (empty by default), children
        under dotted paths — the naming used by the static graph checker
        to locate the module that recorded a faulty op.
        """
        yield prefix, self
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from child.named_modules(prefix=child_prefix)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place.

        Gradients are cleared (they would otherwise be stale in the old
        dtype).  Used by the trainers' float32 mode; returns ``self`` for
        chaining.
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
                param.bump_version()
            param.grad = None
        return self

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout etc.)."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of qualified names to weight arrays."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load weights produced by :meth:`state_dict`.

        Raises
        ------
        KeyError
            If a parameter is missing from ``state``.
        ValueError
            On any shape mismatch.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        if missing:
            raise KeyError(f"state dict is missing parameters: {missing}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.assign_(value)

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of submodules registered in order."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self.register_module(str(index), module)

    def replace(self, index: int, module: Module) -> Module:
        """Swap the module at ``index``, returning the old one.

        Used by the fusion pass (:func:`repro.nn.fusion.fuse`) to
        substitute fused equivalents in place; the replacement is
        registered under the same positional name, so ``state_dict``
        paths are preserved as long as the new module exposes the same
        parameter names.
        """
        previous = self._items[index]
        self._items[index] = module
        self.register_module(str(index), module)
        return previous

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


__all__.append("ModuleList")
