"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate of the ATNN reproduction.  The
paper's system was implemented in TensorFlow; since the reproduction must be
self-contained, we provide a small but complete tape-based autograd engine.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` walks the recorded graph in
reverse topological order and accumulates gradients into every tensor that
has ``requires_grad=True``.

The engine supports full numpy broadcasting: gradients flowing back through a
broadcast operation are summed over the broadcast axes so that each parent
receives a gradient with exactly its own shape.

Example
-------
>>> import numpy as np
>>> from repro.nn.tensor import Tensor
>>> w = Tensor(np.ones((2, 2)), requires_grad=True)
>>> x = Tensor(np.array([[1.0, 2.0]]))
>>> y = (x @ w).sum()
>>> y.backward()
>>> w.grad
array([[1., 1.],
       [2., 2.]])
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.arena import arena_empty, arena_zeros
from repro.nn.sparse import SparseGrad, sparse_grads_enabled

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "set_active_sanitizer",
    "get_active_sanitizer",
]

ArrayLike = Union[np.ndarray, float, int, list, tuple]

# Global autograd switch, toggled by the ``no_grad`` context manager.  When
# disabled, operations still compute values but record no graph, which makes
# inference-time scoring allocation-free apart from the numpy work itself.
_GRAD_ENABLED = True

# Active runtime sanitizer (``repro.analysis.sanitizer.GradSanitizer``) or
# None.  The engine consults it only at the in-place gradient-accumulation
# sites; a single ``is not None`` branch keeps the disabled cost at zero.
_SANITIZER = None


def set_active_sanitizer(sanitizer) -> None:
    """Install (or clear, with ``None``) the engine's runtime sanitizer."""
    global _SANITIZER
    _SANITIZER = sanitizer


def get_active_sanitizer():
    """The currently installed runtime sanitizer, or ``None``."""
    return _SANITIZER


class no_grad:
    """Context manager that disables graph recording.

    Used by the trainers for evaluation passes and by the popularity service
    for O(1) scoring where no gradients are ever needed.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


# Engine-wide compute dtype.  float64 is the historical default (exact
# gradchecks); float32 halves memory traffic on every hot path and is the
# production training mode — see ``docs/performance.md`` for the tolerance
# implications.
_DEFAULT_DTYPE = np.dtype(np.float64)

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> np.dtype:
    """Set the dtype new tensors are created with; returns the previous one.

    Only ``float32`` and ``float64`` are supported.  Existing tensors keep
    their dtype — convert models with :meth:`repro.nn.Module.to_dtype`.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"default dtype must be float32 or float64, got {dtype!r}"
        )
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with."""
    return _DEFAULT_DTYPE


class default_dtype:
    """Context manager scoping :func:`set_default_dtype`.

    >>> with default_dtype(np.float32):
    ...     assert Tensor([1.0]).dtype == np.float32
    """

    def __init__(self, dtype) -> None:
        self._dtype = dtype

    def __enter__(self) -> "default_dtype":
        self._previous = set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        set_default_dtype(self._previous)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a float numpy array without copying when possible."""
    if dtype is None:
        dtype = _DEFAULT_DTYPE
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    numpy broadcasting may have expanded a parent tensor along leading axes
    or along axes of size one; the chain rule requires summing the incoming
    gradient over those expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    squeeze_axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if squeeze_axes:
        grad = grad.sum(axis=squeeze_axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array content; anything accepted by ``numpy.asarray``.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional human-readable label used in error messages and repr.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "name",
        "_backward_fn",
        "_parents",
        "_topo_cache",
        "_version",
        "_taint",
        "_owns_grads",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._topo_cache: Optional[List["Tensor"]] = None
        # Mutation counter for ``data``.  Every engine-sanctioned in-place
        # write (optimizer updates, ``assign_``, ``load_state_dict``,
        # ``to_dtype``) bumps it; the runtime sanitizer records the version
        # of every buffer saved for backward and raises if it changed by
        # the time the gradient function runs.  Counters are per-Tensor:
        # mutating shared storage through another Tensor (``detach`` shares
        # data) is only caught by the sanitizer's deep content checks.
        self._version: int = 0
        # Non-finite taint record (set by the sanitizer's opt-in NaN/Inf
        # tracking); names the op that first produced a non-finite value.
        self._taint = None
        # Set by ``_make`` for ops whose backward returns only freshly
        # allocated buffers (never views of the incoming gradient): those
        # parent gradients may be adopted and mutated without the
        # defensive copy in ``_accumulate``/``backward``.
        self._owns_grads = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got {self.shape}")
        return float(self.data.reshape(-1)[0])

    @property
    def version(self) -> int:
        """Number of sanctioned in-place mutations of :attr:`data` so far."""
        return self._version

    def bump_version(self) -> None:
        """Record that :attr:`data` was mutated (or rebound) in place.

        Every engine code path that writes to a tensor's storage outside
        the op tape must call this so the runtime sanitizer can detect
        stale saved-for-backward buffers.
        """
        self._version += 1

    @property
    def taint(self):
        """Non-finite taint record attached by the sanitizer, or ``None``."""
        return self._taint

    def assign_(self, value: ArrayLike) -> "Tensor":
        """Sanctioned in-place overwrite of :attr:`data` (version-tracked).

        The supported way for model code to rewrite a weight buffer
        (e.g. bias initialisation) without tripping the
        ``tensor-data-mutation`` lint rule or the runtime sanitizer's
        out-of-band-write detection.
        """
        self.data[...] = value
        self._version += 1
        return self

    def detach(self) -> "Tensor":
        """Return a tensor sharing the data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
        owns_grads: bool = False,
    ) -> "Tensor":
        """Create an op output, recording the graph only when needed.

        ``owns_grads`` declares that ``backward_fn`` returns only freshly
        allocated dense buffers (no views of the incoming gradient, no two
        outputs aliasing each other), so the engine may adopt them as
        accumulation buffers and mutate them in place.
        """
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad)
        if needs_grad:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
            out._owns_grads = owns_grads
        return out

    def _accumulate(self, grad, owned: bool = False) -> None:
        """Add ``grad`` (dense or :class:`SparseGrad`) into this tensor's buffer.

        ``owned`` marks a dense buffer freshly allocated by the backward
        pass with no other referents, which may be adopted without the
        defensive copy (backward functions are allowed to return views of
        their incoming gradient, so non-owned buffers must be copied).
        Sparse gradients are always freshly built by their producers and
        are adopted directly.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if isinstance(grad, SparseGrad) or owned:
                self.grad = grad
            else:
                buffer = arena_empty(grad.shape, grad.dtype)
                np.copyto(buffer, grad)
                self.grad = buffer
        elif isinstance(self.grad, SparseGrad):
            if isinstance(grad, SparseGrad):
                self.grad = self.grad.merge(grad)
            else:
                self.grad = self.grad + grad  # densifies
        elif isinstance(grad, SparseGrad):
            if _SANITIZER is not None:
                _SANITIZER.check_inplace_accumulate(self.grad, grad, self)
            grad.add_into(self.grad)
        else:
            if _SANITIZER is not None:
                _SANITIZER.check_inplace_accumulate(self.grad, grad, self)
            self.grad += grad

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones, which is only appropriate for scalars.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor; got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order = self._topological_order()
        grads = {id(self): grad}
        # Keys whose buffer was allocated by this pass (merge results): those
        # may be mutated in place and handed to ``_accumulate`` without the
        # defensive copy.  Buffers returned by backward functions may alias
        # op internals and are never mutated.
        owned = set()
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node_owned = id(node) in owned
            owned.discard(id(node))
            node._accumulate(node_grad, owned=node_owned)
            if node._backward_fn is None:
                continue
            if isinstance(node_grad, SparseGrad):
                # Only leaf parameters receive sparse grads in practice;
                # densify for the rare case of a non-leaf consumer.
                node_grad = node_grad.to_dense()
            parent_grads = node._backward_fn(node_grad)
            node_owns = node._owns_grads
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key not in grads:
                    grads[key] = parent_grad
                    if node_owns and not isinstance(parent_grad, SparseGrad):
                        owned.add(key)
                    continue
                current = grads[key]
                current_sparse = isinstance(current, SparseGrad)
                incoming_sparse = isinstance(parent_grad, SparseGrad)
                if key in owned and not current_sparse and not incoming_sparse:
                    if _SANITIZER is not None:
                        _SANITIZER.check_inplace_accumulate(current, parent_grad, parent)
                    current += parent_grad  # reuse the merge buffer
                elif key in owned and not current_sparse and incoming_sparse:
                    if _SANITIZER is not None:
                        _SANITIZER.check_inplace_accumulate(current, parent_grad, parent)
                    parent_grad.add_into(current)
                elif current_sparse and incoming_sparse:
                    grads[key] = current.merge(parent_grad)
                    owned.add(key)
                elif incoming_sparse:
                    # Unowned dense + sparse: copy the dense buffer once and
                    # scatter the rows in (never densify the sparse side).
                    buffer = arena_empty(current.shape, current.dtype)
                    np.copyto(buffer, current)
                    parent_grad.add_into(buffer)
                    grads[key] = buffer
                    owned.add(key)
                else:
                    # sparse + dense, or unowned dense + dense: both allocate
                    # a fresh buffer we then own.
                    if (
                        not current_sparse
                        and current.shape == parent_grad.shape
                        and current.dtype == parent_grad.dtype
                    ):
                        merged = arena_empty(current.shape, current.dtype)
                        np.add(current, parent_grad, out=merged)
                        grads[key] = merged
                    else:
                        grads[key] = current + parent_grad
                    owned.add(key)

    def _topological_order(self) -> List["Tensor"]:
        """Nodes reachable from ``self`` in reverse topological order.

        The order is computed once per output tensor and cached: a graph's
        structure is frozen at op-recording time, so repeated ``backward``
        calls on the same output (gradient accumulation, gradcheck loops)
        skip the graph walk entirely.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        self._topo_cache = order
        return order

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

        return Tensor._make(a.data - b.data, (a, b), backward)

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * b.data, a.shape),
                _unbroadcast(grad * a.data, b.shape),
            )

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / b.data, a.shape),
                _unbroadcast(-grad * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-a.data, (a,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self
        value = a.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * a.data ** (exponent - 1),)

        return Tensor._make(value, (a,), backward)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(
                f"matmul expects 2-D operands, got {a.shape} @ {b.shape}"
            )

        def backward(grad: np.ndarray):
            return (grad @ b.data.T, a.data.T @ grad)

        # Both parent grads are fresh matmul outputs: the engine may adopt
        # them as accumulation buffers without the defensive copy.
        return Tensor._make(a.data @ b.data, (a, b), backward, owns_grads=True)

    def transpose(self) -> "Tensor":
        """Transpose of a 2-D tensor."""
        a = self
        if a.ndim != 2:
            raise ValueError(f"transpose expects a 2-D tensor, got {a.shape}")

        def backward(grad: np.ndarray):
            return (grad.T,)

        return Tensor._make(a.data.T, (a,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = a.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(a.data.reshape(shape), (a,), backward)

    def __getitem__(self, index) -> "Tensor":
        a = self
        value = a.data[index]

        def backward(grad: np.ndarray):
            full = arena_zeros(a.data.shape, a.data.dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(value, (a,), backward, owns_grads=True)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        a = self
        value = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(ax % a.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
            buffer = arena_empty(a.shape, grad.dtype)
            np.copyto(buffer, g)  # copyto broadcasts g across a.shape
            return (buffer,)

        return Tensor._make(value, (a,), backward, owns_grads=True)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; gradient flows to the (first) argmax entries."""
        a = self
        value = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            expanded = value
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(value, axis)
            mask = a.data == expanded
            # Split the gradient across ties to keep the map well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * g / counts,)

        return Tensor._make(value, (a,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        a = self
        if axis is None:
            count = a.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([a.shape[ax % a.ndim] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        value = np.exp(a.data)

        def backward(grad: np.ndarray):
            return (grad * value,)

        return Tensor._make(value, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray):
            return (grad / a.data,)

        return Tensor._make(np.log(a.data), (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        value = np.sqrt(a.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / value,)

        return Tensor._make(value, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        value = np.tanh(a.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - value * value),)

        return Tensor._make(value, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        # Numerically stable split over sign.
        x = a.data
        value = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                         np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))))

        def backward(grad: np.ndarray):
            return (grad * value * (1.0 - value),)

        return Tensor._make(value, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(grad: np.ndarray):
            buffer = arena_empty(grad.shape, grad.dtype)
            np.multiply(grad, mask, out=buffer)
            return (buffer,)

        return Tensor._make(a.data * mask, (a,), backward, owns_grads=True)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        a = self
        mask = a.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward(grad: np.ndarray):
            return (grad * scale,)

        return Tensor._make(a.data * scale, (a,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        mask = (a.data > low) & (a.data < high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(np.clip(a.data, low, high), (a,), backward)

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return Tensor._make(np.abs(a.data), (a,), backward)

    # ------------------------------------------------------------------
    # Multi-tensor ops
    # ------------------------------------------------------------------
    # These live on the class (the module-level functions below delegate)
    # so that all call sites dispatch through one patchable point — the
    # autograd profiler in ``repro.obs`` instruments ops by wrapping the
    # class attributes, which also reaches modules that imported the
    # functions by value.
    @staticmethod
    def _concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = list(tensors)
        if not tensors:
            raise ValueError("concat expects at least one tensor")
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(grad: np.ndarray):
            return tuple(np.split(grad, splits, axis=axis))

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def _stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        if not tensors:
            raise ValueError("stack expects at least one tensor")
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray):
            parts = np.split(grad, len(tensors), axis=axis)
            return tuple(np.squeeze(p, axis=axis) for p in parts)

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def _embedding_lookup(weight: "Tensor", indices: np.ndarray) -> "Tensor":
        indices = np.asarray(indices)
        if indices.dtype.kind not in "iu":
            raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
        if weight.ndim != 2:
            raise ValueError(f"embedding weight must be 2-D, got {weight.shape}")
        vocab = weight.shape[0]
        if indices.size and (indices.min() < 0 or indices.max() >= vocab):
            raise IndexError(
                f"embedding index out of range [0, {vocab}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        value = weight.data[indices]

        def backward(grad: np.ndarray):
            if not sparse_grads_enabled():
                # Legacy dense path, kept for benchmarking and as a
                # fallback: materialises the full table every step.  Not
                # arena-pooled: the buffer is vocab x dim, and pooling it
                # would pin the whole table's worth of memory per step.
                full = np.zeros_like(weight.data)  # repro-lint: disable=ATN006 -- legacy dense fallback; pooling a vocab x dim buffer would pin table-sized memory
                np.add.at(full, indices, grad)
                return (full,)
            dim = weight.data.shape[1]
            rows = grad.reshape(-1, dim)
            return (SparseGrad.from_rows(indices, rows, weight.data.shape),)

        return Tensor._make(value, (weight,), backward)

    # ------------------------------------------------------------------
    # Fused ops (perf round 2)
    # ------------------------------------------------------------------
    # Each fused op collapses a multi-node subgraph into a single tape
    # node: one forward kernel over preallocated storage and one backward
    # closure, eliminating the python-level dispatch, intermediate Tensor
    # wrappers and per-node gradient buffers of the unfused chain.  All
    # scratch comes from the ambient BufferArena when one is installed.
    # The fused modules in ``repro.nn.layers`` and the graph-level
    # substitution pass in ``repro.nn.fusion`` are the public surface.
    @staticmethod
    def _fused_linear_relu(
        x: "Tensor", weight: "Tensor", bias: Optional["Tensor"] = None
    ) -> "Tensor":
        """``relu(x @ weight + bias)`` as one node.

        Forward is a single matmul with the bias-add and the ReLU applied
        in place on the matmul output; backward masks the incoming
        gradient once and feeds both parent matmuls from the masked
        buffer.
        """
        if x.ndim != 2 or weight.ndim != 2:
            raise ValueError(
                f"fused_linear_relu expects 2-D operands, got "
                f"{x.shape} @ {weight.shape}"
            )
        value = x.data @ weight.data
        if bias is not None:
            value += bias.data
        np.maximum(value, 0.0, out=value)
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray):
            # The pre-activation is only needed through its sign, and
            # relu output > 0 iff pre-activation > 0 — so the saved
            # output doubles as the mask and the pre-activation is never
            # materialised.
            mask = arena_empty(value.shape, np.bool_)
            np.greater(value, 0.0, out=mask)
            masked = arena_empty(grad.shape, grad.dtype)
            np.multiply(grad, mask, out=masked)
            grad_x = masked @ weight.data.T
            grad_w = x.data.T @ masked
            if bias is None:
                return (grad_x, grad_w)
            return (grad_x, grad_w, masked.sum(axis=0))

        return Tensor._make(value, parents, backward, owns_grads=True)

    @staticmethod
    def _fused_cross(
        x0: "Tensor", x: "Tensor", weight: "Tensor", bias: "Tensor"
    ) -> "Tensor":
        """DCN cross layer ``x0 * (x @ w) + b + x`` as one node.

        The unfused chain records four nodes (matmul, mul, two adds) and
        five gradient buffers; the fused op records one node and reuses
        the row-sum projection for all four parent gradients.  ``x0`` and
        ``x`` may be the same tensor (first layer of a cross network) —
        the engine merges the two gradient contributions by identity.
        """
        if x.ndim != 2 or weight.ndim != 2 or weight.shape[1] != 1:
            raise ValueError(
                f"fused_cross expects x (batch, d) and weight (d, 1), got "
                f"{x.shape} and {weight.shape}"
            )
        proj = x.data @ weight.data  # (batch, 1)
        value = x0.data * proj
        value += bias.data
        value += x.data

        def backward(grad: np.ndarray):
            # s = rowsum(grad * x0): the only reduction the whole layer
            # needs; feeds grad_x, grad_w directly.
            scratch = arena_empty(grad.shape, grad.dtype)
            np.multiply(grad, x0.data, out=scratch)
            s = scratch.sum(axis=1, keepdims=True)  # (batch, 1)
            grad_x0 = arena_empty(grad.shape, grad.dtype)
            np.multiply(grad, proj, out=grad_x0)
            grad_x = arena_empty(grad.shape, grad.dtype)
            np.multiply(s, weight.data.T, out=grad_x)
            grad_x += grad
            grad_w = x.data.T @ s
            grad_b = grad.sum(axis=0)
            return (grad_x0, grad_x, grad_w, grad_b)

        return Tensor._make(value, (x0, x, weight, bias), backward, owns_grads=True)

    @staticmethod
    def _fused_mlp(
        x: "Tensor",
        layers: Sequence[Tuple["Tensor", Optional["Tensor"], bool]],
    ) -> "Tensor":
        """A whole Linear/ReLU stack as one tape node.

        ``layers`` is a sequence of ``(weight, bias_or_None, relu)``
        triples.  Forward runs the stack over in-place bias/ReLU kernels,
        saving only the per-layer outputs; backward replays the chain in
        reverse inside a single closure, so an L-layer MLP costs one
        python-level graph node instead of ~3L.
        """
        layers = [tuple(spec) for spec in layers]
        if not layers:
            raise ValueError("fused_mlp expects at least one layer")
        hidden = x.data
        saved = [hidden]
        for weight, bias_t, activate in layers:
            out = hidden @ weight.data
            if bias_t is not None:
                out += bias_t.data
            if activate:
                np.maximum(out, 0.0, out=out)
            hidden = out
            saved.append(hidden)
        parents: List["Tensor"] = [x]
        for weight, bias_t, _ in layers:
            parents.append(weight)
            if bias_t is not None:
                parents.append(bias_t)

        def backward(grad: np.ndarray):
            per_layer: List[Tuple[np.ndarray, ...]] = []
            g = grad
            for i in range(len(layers) - 1, -1, -1):
                weight, bias_t, activate = layers[i]
                if activate:
                    mask = arena_empty(saved[i + 1].shape, np.bool_)
                    np.greater(saved[i + 1], 0.0, out=mask)
                    masked = arena_empty(g.shape, g.dtype)
                    np.multiply(g, mask, out=masked)
                    g = masked
                grad_w = saved[i].T @ g
                if bias_t is not None:
                    per_layer.append((grad_w, g.sum(axis=0)))
                else:
                    per_layer.append((grad_w,))
                g = g @ weight.data.T
            flat: List[np.ndarray] = [g]
            for grads in reversed(per_layer):
                flat.extend(grads)
            return tuple(flat)

        return Tensor._make(saved[-1], tuple(parents), backward, owns_grads=True)

    @staticmethod
    def _fused_bce_logits(logits: "Tensor", targets: np.ndarray) -> "Tensor":
        """Mean stable BCE ``mean(max(z,0) - z*y + log(1+exp(-|z|)))`` fused.

        The unfused loss records ~9 tape nodes over batch-sized
        intermediates (relu, mul, abs, neg, exp, add, log, sub, mean);
        fused it is one node whose forward applies the identical
        elementwise sequence (so the loss *value* is bit-identical to the
        composed chain) and whose backward evaluates the closed form
        ``(step(z) - y - sign(z)*e/(1+e)) / N`` in one pass —
        algebraically ``sigmoid(z) - y``, expressed through the same
        subgradient conventions (``relu'(0) = 0``, ``sign(0) = 0``) as
        the unfused graph.
        """
        z = logits.data
        if targets.shape != z.shape:
            raise ValueError(
                f"targets shape {targets.shape} does not match logits {z.shape}"
            )
        exp_neg_abs = np.exp(-np.abs(z))
        elementwise = np.maximum(z, 0.0)
        elementwise -= z * targets
        elementwise += np.log(1.0 + exp_neg_abs)
        value = elementwise.mean()
        inverse_n = 1.0 / max(z.size, 1)

        def backward(grad: np.ndarray):
            grad_z = arena_empty(z.shape, z.dtype)
            np.greater(z, 0.0, out=grad_z)  # step(z) as 0/1 floats
            grad_z -= targets
            ratio = arena_empty(z.shape, z.dtype)
            np.sign(z, out=ratio)
            ratio *= exp_neg_abs
            denominator = arena_empty(z.shape, z.dtype)
            np.add(exp_neg_abs, 1.0, out=denominator)
            ratio /= denominator
            grad_z -= ratio
            grad_z *= grad * inverse_n
            return (grad_z,)

        return Tensor._make(value, (logits,), backward, owns_grads=True)

    @staticmethod
    def _fused_embedding_bag(
        weights: Sequence["Tensor"], indices_list: Sequence[np.ndarray]
    ) -> "Tensor":
        """Concatenated per-feature embedding lookups as one tape node.

        The unfused embedding block records one lookup node per table plus
        a concat node, and its backward splits the gradient into per-table
        copies before building each :class:`SparseGrad`.  Fused, the
        forward gathers every table directly into column slices of one
        output buffer and the backward hands each table a *view* of its
        gradient columns — ``SparseGrad`` compaction does the only copy.
        Tables may be shared between features (ATNN's generator/encoder
        share item-profile tables); the engine merges the duplicate
        parents' sparse gradients by identity.
        """
        weights = list(weights)
        indices_list = [np.asarray(ix) for ix in indices_list]
        if not weights or len(weights) != len(indices_list):
            raise ValueError(
                f"fused_embedding_bag expects matched non-empty weights and "
                f"indices, got {len(weights)} and {len(indices_list)}"
            )
        batch = indices_list[0].shape[0] if indices_list[0].ndim == 1 else -1
        for weight, indices in zip(weights, indices_list):
            if indices.dtype.kind not in "iu":
                raise TypeError(
                    f"embedding indices must be integers, got {indices.dtype}"
                )
            if indices.ndim != 1 or indices.shape[0] != batch:
                raise ValueError(
                    "fused_embedding_bag expects aligned 1-D index arrays, "
                    f"got shapes {[ix.shape for ix in indices_list]}"
                )
            if weight.ndim != 2:
                raise ValueError(
                    f"embedding weight must be 2-D, got {weight.shape}"
                )
            vocab = weight.shape[0]
            if indices.size and (indices.min() < 0 or indices.max() >= vocab):
                raise IndexError(
                    f"embedding index out of range [0, {vocab}): "
                    f"min={indices.min()}, max={indices.max()}"
                )
        dims = [weight.shape[1] for weight in weights]
        splits = []
        offset = 0
        for dim in dims:
            splits.append((offset, offset + dim))
            offset += dim
        value = np.empty((batch, offset), dtype=weights[0].data.dtype)
        for weight, indices, (lo, hi) in zip(weights, indices_list, splits):
            np.take(weight.data, indices, axis=0, out=value[:, lo:hi], mode="clip")

        def backward(grad: np.ndarray):
            if not sparse_grads_enabled():
                outs = []
                for weight, indices, (lo, hi) in zip(weights, indices_list, splits):
                    full = np.zeros_like(weight.data)  # repro-lint: disable=ATN006 -- legacy dense fallback; pooling a vocab x dim buffer would pin table-sized memory
                    np.add.at(full, indices, grad[:, lo:hi])
                    outs.append(full)
                return tuple(outs)
            return tuple(
                SparseGrad.from_rows(indices, grad[:, lo:hi], weight.data.shape)
                for weight, indices, (lo, hi) in zip(weights, indices_list, splits)
            )

        return Tensor._make(value, tuple(weights), backward, owns_grads=True)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    return Tensor._concat(tensors, axis=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    return Tensor._stack(tensors, axis=axis)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by integer ``indices``.

    The backward pass emits a row-sparse :class:`~repro.nn.sparse.SparseGrad`
    carrying only the touched rows (repeated indices are segment-summed), so
    neither the gradient nor the optimizer update ever materialises the full
    ``num_embeddings x dim`` table.  Wrap training in
    ``use_sparse_grads(False)`` to fall back to the legacy dense scatter.
    """
    return Tensor._embedding_lookup(weight, indices)


def fused_linear_relu(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``relu(x @ weight + bias)`` as a single fused tape node."""
    return Tensor._fused_linear_relu(x, weight, bias)


def fused_cross(x0: Tensor, x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """DCN cross layer ``x0 * (x @ w) + b + x`` as a single fused tape node."""
    return Tensor._fused_cross(x0, x, weight, bias)


def fused_mlp(
    x: Tensor, layers: Sequence[Tuple[Tensor, Optional[Tensor], bool]]
) -> Tensor:
    """A Linear/ReLU stack as a single fused tape node.

    ``layers`` is a sequence of ``(weight, bias_or_None, relu)`` triples.
    """
    return Tensor._fused_mlp(x, layers)


def fused_embedding_bag(
    weights: Sequence[Tensor], indices_list: Sequence[np.ndarray]
) -> Tensor:
    """Concatenated embedding lookups over several tables as one fused node."""
    return Tensor._fused_embedding_bag(weights, indices_list)
