"""Multi-process data-parallel training.

The numpy autograd engine is single-threaded by construction (see
``docs/thread_hostility.md``: tape state, the buffer arena and the
metrics registry are all process-ambient), so scaling out means
*processes*, not threads.  This module implements a synchronous
worker-pool trainer:

* **Shared parameter slab** — every model parameter is re-bound onto a
  view of one named ``SharedMemory`` block.  Fork workers inherit the
  mapping; spawn workers attach by name.  The parent's optimizer updates
  parameters *in place* (the optimizers already do), so workers observe
  each step the moment it lands — which is what preserves the ATNN
  alternation semantics: the generator path's forward in a worker sees
  the encoder-path update the parent just applied.
* **Sharded data** — worker ``i`` of ``N`` trains on the strided shard
  ``rows[i::N]`` of the ``InteractionDataset``; a single worker gets the
  full dataset so ``n_workers=1`` reproduces the in-process trainer
  bit for bit.  Workers iterate with ``prefetch=True`` so batch
  assembly overlaps the parent hand-off wait.
* **Synchronous gradient aggregation** — per step, every worker computes
  gradients on its own batch and ships them over a pipe; the parent
  merges them (dense: weighted sum; row-sparse: index-union merge of
  :class:`~repro.nn.sparse.SparseGrad`, never densified), installs the
  merged gradients on the shared parameters, clips, and applies one
  optimizer step.
* **Worker telemetry** — when a spool directory is configured each
  worker runs its own :class:`~repro.obs.metrics.MetricsRegistry` and
  ships frames via :class:`~repro.obs.agg.TelemetryShipper`, so the
  PR-9 collector merges a training fleet exactly like a serving fleet.

The protocol is deliberately lock-step (the parent broadcasts one
message, then waits for every worker's reply) — simple to reason about,
deterministic under fixed seeds, and all the paper-scale models are far
from saturating it.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Batch, InteractionDataset
from repro.nn.arena import get_active_arena
from repro.nn.losses import (
    binary_cross_entropy,
    mean_squared_error,
    similarity_loss,
)
from repro.nn.sparse import SparseGrad
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "WorkerError",
    "TwoTowerStepProgram",
    "ATNNStepProgram",
    "MultiTaskStepProgram",
    "ParameterSlab",
    "WorkerPool",
    "default_start_method",
]


class WorkerError(RuntimeError):
    """A worker process failed; carries the worker's traceback text."""


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the slab), else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ----------------------------------------------------------------------
# Step programs: the picklable per-batch recipe each worker executes
# ----------------------------------------------------------------------
class TwoTowerStepProgram:
    """One path: binary cross-entropy on the click label."""

    def __init__(self, label: str = "ctr") -> None:
        self.label = label

    def paths(self) -> Tuple[str, ...]:
        return ("encoder",)

    def loss(self, model, batch: Batch, path: str):
        probabilities = model(batch.features)
        loss = binary_cross_entropy(probabilities, batch.label(self.label))
        return loss, {"loss": float(loss.item())}


class ATNNStepProgram:
    """Algorithm 1's alternation: encoder ``L_i``, then ``L_g + λ·L_s``.

    The generator path recomputes the detached encoder targets at step
    time, so (like the in-process trainer) it distils against the
    encoder weights *after* the encoder-path update — the parent applies
    that update to the shared slab before broadcasting this path.
    """

    def __init__(self, label: str = "ctr", lambda_similarity: float = 0.1) -> None:
        self.label = label
        self.lambda_similarity = lambda_similarity

    def paths(self) -> Tuple[str, ...]:
        return ("encoder", "generator")

    def loss(self, model, batch: Batch, path: str):
        targets = batch.label(self.label)
        if path == "encoder":
            probabilities = model(batch.features)
            loss = binary_cross_entropy(probabilities, targets)
            return loss, {"loss_i": float(loss.item())}
        with no_grad():
            encoder_targets = model.encoded_item_vectors(batch.features)
        generated = model.generated_item_vectors(batch.features)
        user_vectors = model.user_vectors(batch.features)
        probabilities = model.scoring_head(generated, user_vectors)
        loss_g = binary_cross_entropy(probabilities, targets)
        loss_s = similarity_loss(generated, Tensor(encoder_targets.data))
        combined = loss_g + self.lambda_similarity * loss_s
        return combined, {
            "loss_g": float(loss_g.item()),
            "loss_s": float(loss_s.item()),
        }


class MultiTaskStepProgram:
    """Algorithm 2's alternation with ``L^GMV + λ₁·L^VpPV`` on each path."""

    def __init__(
        self,
        lambda_vppv: float = 100.0,
        lambda_similarity: float = 10.0,
        adversarial: bool = True,
    ) -> None:
        self.lambda_vppv = lambda_vppv
        self.lambda_similarity = lambda_similarity
        self.adversarial = adversarial

    def paths(self) -> Tuple[str, ...]:
        return ("encoder", "generator") if self.adversarial else ("encoder",)

    def _task_loss(self, model, batch: Batch, item_vectors):
        group_vectors = model.group_vectors(batch.features)
        gmv_prediction = model.gmv_head(item_vectors, group_vectors)
        vppv_prediction = model.vppv_head(item_vectors, group_vectors)
        return mean_squared_error(
            gmv_prediction, batch.label("gmv")
        ) + self.lambda_vppv * mean_squared_error(
            vppv_prediction, batch.label("vppv")
        )

    def loss(self, model, batch: Batch, path: str):
        if path == "encoder":
            item_vectors = model.encoded_item_vectors(batch.features)
            loss = self._task_loss(model, batch, item_vectors)
            return loss, {"loss_r": float(loss.item())}
        with no_grad():
            encoder_targets = model.encoded_item_vectors(batch.features)
        generated = model.generated_item_vectors(batch.features)
        loss_g = self._task_loss(model, batch, generated)
        loss_s = similarity_loss(generated, Tensor(encoder_targets.data))
        combined = loss_g + self.lambda_similarity * loss_s
        return combined, {
            "loss_g": float(loss_g.item()),
            "loss_s": float(loss_s.item()),
        }


# ----------------------------------------------------------------------
# Shared parameter slab
# ----------------------------------------------------------------------
_SLAB_ALIGN = 64  # cache-line alignment between parameter segments


class ParameterSlab:
    """All model parameters re-bound onto one shared-memory block.

    The parent creates the slab and copies every parameter in; from then
    on ``param.data`` *is* the shared view, so the optimizers' in-place
    updates are immediately visible to every attached process.
    :meth:`release` copies the weights back into private arrays and
    destroys the block, leaving the model usable after pool teardown.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: List[Tuple[int, Tuple[int, ...], str]],
        parameters: List,
    ) -> None:
        self.shm = shm
        self.layout = layout
        self.parameters = parameters

    @classmethod
    def create(cls, parameters: Sequence) -> "ParameterSlab":
        parameters = list(parameters)
        layout: List[Tuple[int, Tuple[int, ...], str]] = []
        offset = 0
        for param in parameters:
            data = np.ascontiguousarray(param.data)
            layout.append((offset, tuple(data.shape), data.dtype.str))
            offset += data.nbytes
            offset = (offset + _SLAB_ALIGN - 1) & ~(_SLAB_ALIGN - 1)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        slab = cls(shm, layout, parameters)
        for param, (start, shape, dtype) in zip(parameters, layout):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start)
            np.copyto(view, param.data)
            param.data = view  # repro-lint: disable=ATN001 -- storage rebind onto the slab, version bumped below
            param.bump_version()
        return slab

    @property
    def name(self) -> str:
        return self.shm.name

    def release(self) -> None:
        """Rebind parameters to private copies, then destroy the block."""
        for param, (start, shape, dtype) in zip(self.parameters, self.layout):
            param.data = np.array(param.data, copy=True)  # repro-lint: disable=ATN001 -- storage rebind off the dying slab, version bumped below
            param.bump_version()
        self.parameters = []
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _attach_parameters(model, shm_name: str, layout) -> shared_memory.SharedMemory:
    """Rebind a (spawned) worker's parameters onto the parent's slab.

    Python 3.11's ``SharedMemory`` has no ``track=`` parameter, so this
    attach re-registers the name with the (family-shared) resource
    tracker.  That is harmless — registration is idempotent set
    insertion, and the parent's ``unlink()`` unregisters once for
    everyone; unregistering here instead would race between workers.
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    for param, (start, shape, dtype) in zip(model.parameters(), layout):
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start)
        param.data = view  # repro-lint: disable=ATN001 -- storage rebind onto the parent's slab, version bumped below
        param.bump_version()
    return shm


# ----------------------------------------------------------------------
# Gradient wire encoding and merge
# ----------------------------------------------------------------------
def _encode_grad(grad):
    if grad is None:
        return None
    if isinstance(grad, SparseGrad):
        compacted = grad.compact()
        return ("s", compacted.shape, compacted.indices, compacted.rows)
    return ("d", np.ascontiguousarray(grad))


def _decode_grad(encoded, weight: float):
    if encoded[0] == "d":
        dense = encoded[1]
        if weight != 1.0:
            dense = dense * weight
        return dense
    _, shape, indices, rows = encoded
    if weight != 1.0:
        rows = rows * weight
    return SparseGrad(shape, indices, rows, compacted=True)

def _accumulate_grad(total, grad):
    """Merge one decoded gradient into the running total (both owned)."""
    if total is None:
        return grad
    if isinstance(total, SparseGrad):
        if isinstance(grad, SparseGrad):
            return total.merge(grad)  # index-union, dedup deferred
        return total.add_into(grad)
    if isinstance(grad, SparseGrad):
        return grad.add_into(total)
    total += grad
    return total


def merge_worker_grads(encoded_per_worker: Sequence, weight: float):
    """Weighted merge of one parameter's gradients across workers.

    ``weight`` scales each worker's contribution (``1/N`` for equal full
    batches; exactly ``1.0`` — no scaling, bit-for-bit — for a single
    worker).  Dense gradients sum in place over the wire copies;
    row-sparse gradients stay sparse via index-union
    :meth:`SparseGrad.merge`.
    """
    total = None
    for encoded in encoded_per_worker:
        if encoded is None:
            continue
        total = _accumulate_grad(total, _decode_grad(encoded, weight))
    if isinstance(total, SparseGrad):
        total.compact()
    return total


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass
class _WorkerInit:
    """Everything a worker needs; picklable for the spawn start method."""

    worker_id: int
    n_workers: int
    model: Any
    program: Any
    dataset: InteractionDataset
    batch_size: int
    seed: int
    drop_last: bool
    prefetch: bool
    attach_shm: Optional[str]  # slab name; None under fork (inherited)
    layout: Any
    spool_dir: Optional[str]
    process_label: str
    flush_interval: float


def _worker_main(conn, init: _WorkerInit) -> None:
    """Lock-step worker loop: recv one message, reply once, repeat."""
    import contextlib

    shm = None  # kept alive for the process lifetime
    stack = contextlib.ExitStack()
    try:
        if init.attach_shm is not None:
            shm = _attach_parameters(init.model, init.attach_shm, init.layout)
        model = init.model
        model.train()
        parameters = list(model.parameters())
        rng = np.random.default_rng(init.seed)
        registry = None
        shipper = None
        if init.spool_dir is not None:
            from repro.obs.agg import TelemetryShipper
            from repro.obs.metrics import MetricsRegistry, use_registry

            registry = MetricsRegistry()
            stack.enter_context(use_registry(registry))
            registry.gauge(
                "parallel.worker.id", help="data-parallel worker index"
            ).set(init.worker_id)
            shipper = TelemetryShipper(
                init.spool_dir,
                process_label=init.process_label,
                interval_seconds=init.flush_interval,
                registry=registry,
            )
        batches = None
        batch: Optional[Batch] = None
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "epoch":
                batches = init.dataset.iter_batches(
                    init.batch_size,
                    rng=rng,
                    drop_last=init.drop_last,
                    prefetch=init.prefetch,
                )
                conn.send(("ok",))
            elif kind == "step":
                _, path, advance = message
                started = time.perf_counter()
                if advance:
                    batch = next(batches)
                for param in parameters:
                    param.grad = None
                loss, logs = init.program.loss(model, batch, path)
                value = float(loss.item())
                loss.backward()
                encoded = [_encode_grad(param.grad) for param in parameters]
                conn.send(("grads", value, logs, encoded))
                # The reply is fully pickled before send returns, so the
                # gradient buffers can be recycled for the next step.
                for param in parameters:
                    param.grad = None
                arena = get_active_arena()
                if arena is not None:
                    arena.advance()
                if registry is not None:
                    registry.counter(
                        "parallel.worker.steps",
                        help="gradient steps computed by this worker",
                    ).inc()
                    registry.histogram(
                        "parallel.worker.step_seconds",
                        help="per-step compute time in this worker",
                    ).observe(time.perf_counter() - started)
                if shipper is not None:
                    shipper.maybe_flush()
            elif kind == "stop":
                if shipper is not None:
                    shipper.flush()
                conn.send(("bye",))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown message kind {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        stack.close()
        if shm is not None:
            # Views into the slab die with the process; closing here would
            # raise BufferError while they are still alive.
            pass


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
class WorkerPool:
    """Synchronous data-parallel worker pool over a shared parameter slab.

    Parameters
    ----------
    model:
        Model whose parameters will be re-bound onto the slab (in place).
    program:
        A picklable step program (``paths()`` + ``loss(model, batch,
        path)``), e.g. :class:`ATNNStepProgram`.
    dataset:
        Training interactions; worker ``i`` trains on ``rows[i::N]``.
    n_workers:
        Pool size.  ``1`` keeps the full dataset on the single worker
        (no rows dropped) so the run is bit-for-bit identical to the
        in-process trainer; ``N > 1`` shards with ``drop_last`` so every
        step aggregates ``N`` equal-sized batches.
    batch_size, seed:
        Per-worker batch size and the shared shuffle seed.
    start_method:
        ``"fork"`` (default where available) or ``"spawn"``.
    spool_dir:
        When set, workers ship telemetry frames here (one
        ``<label>-w<i>.jsonl`` spool per worker).
    shard_label:
        Prefix for worker spool labels; defaults to ``"train"``.
    prefetch:
        Double-buffer batch assembly in the workers (on by default).

    Usage: ``begin_epoch()`` once per epoch, then ``steps_per_epoch``
    rounds of ``step(path, advance=...)`` per program path; each round
    leaves merged gradients on the parameters for the caller to clip and
    apply.  Call :meth:`close` (or use as a context manager) to tear
    down — it restores private parameter storage.
    """

    def __init__(
        self,
        model,
        program,
        dataset: InteractionDataset,
        *,
        n_workers: int,
        batch_size: int,
        seed: int = 0,
        start_method: Optional[str] = None,
        spool_dir=None,
        shard_label: Optional[str] = None,
        prefetch: bool = True,
        flush_interval: float = 2.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        n = len(dataset)
        if n == 0:
            raise ValueError("dataset is empty")
        self.model = model
        self.program = program
        self.n_workers = n_workers
        self.batch_size = batch_size
        self.parameters = list(model.parameters())
        self.weight = 1.0 if n_workers == 1 else 1.0 / n_workers
        if n_workers == 1:
            shards = [dataset]
            self.steps_per_epoch = math.ceil(n / batch_size)
            drop_last = False
        else:
            shards = [
                dataset.subset(np.arange(i, n, n_workers)) for i in range(n_workers)
            ]
            self.steps_per_epoch = min(len(s) // batch_size for s in shards)
            drop_last = True
            if self.steps_per_epoch == 0:
                raise ValueError(
                    f"dataset of {n} rows is too small for {n_workers} workers "
                    f"x batch_size {batch_size}"
                )
        method = start_method or default_start_method()
        context = mp.get_context(method)
        self._slab = ParameterSlab.create(self.parameters)
        label = shard_label or "train"
        self._conns = []
        self._processes = []
        try:
            for worker_id, shard in enumerate(shards):
                parent_conn, child_conn = context.Pipe()
                init = _WorkerInit(
                    worker_id=worker_id,
                    n_workers=n_workers,
                    model=model,
                    program=program,
                    dataset=shard,
                    batch_size=batch_size,
                    seed=seed,
                    drop_last=drop_last,
                    prefetch=prefetch,
                    attach_shm=None if method == "fork" else self._slab.name,
                    layout=self._slab.layout,
                    spool_dir=str(spool_dir) if spool_dir is not None else None,
                    process_label=f"{label}-w{worker_id}",
                    flush_interval=flush_interval,
                )
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, init),
                    daemon=True,
                    name=f"repro-train-w{worker_id}",
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._processes.append(process)
        except Exception:
            self.close()
            raise
        self._publish_gauge()

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()

    def _publish_gauge(self) -> None:
        from repro.obs.metrics import get_active_registry

        registry = get_active_registry()
        if registry is not None:
            registry.gauge(
                "parallel.workers", help="data-parallel worker pool size"
            ).set(self.n_workers)

    def _recv(self, worker_id: int):
        conn = self._conns[worker_id]
        process = self._processes[worker_id]
        while not conn.poll(0.2):
            if not process.is_alive():
                raise WorkerError(
                    f"worker {worker_id} (pid {process.pid}) died without "
                    f"replying, exit code {process.exitcode}"
                )
        try:
            reply = conn.recv()
        except EOFError as error:
            raise WorkerError(
                f"worker {worker_id} closed its pipe mid-protocol"
            ) from error
        if reply[0] == "error":
            raise WorkerError(f"worker {worker_id} failed:\n{reply[1]}")
        return reply

    def begin_epoch(self) -> None:
        """Start a fresh (re-shuffled) epoch on every worker."""
        for conn in self._conns:
            conn.send(("epoch",))
        for worker_id in range(self.n_workers):
            self._recv(worker_id)

    def step(self, path: str, advance: bool) -> Tuple[float, Dict[str, float]]:
        """Run one synchronous gradient step on every worker.

        Broadcasts ``(path, advance)``, waits for every worker's
        gradients, merges them onto ``model``'s parameters (``.grad``),
        and returns the worker-averaged loss value and log dict.  The
        caller owns clipping and the optimizer step.
        """
        started = time.perf_counter()
        for conn in self._conns:
            conn.send(("step", path, advance))
        replies = [self._recv(worker_id) for worker_id in range(self.n_workers)]
        loss_value = float(np.mean([reply[1] for reply in replies]))
        logs: Dict[str, float] = {}
        for key in replies[0][2]:
            logs[key] = float(np.mean([reply[2][key] for reply in replies]))
        for position, param in enumerate(self.parameters):
            encoded = [reply[3][position] for reply in replies]
            param.grad = merge_worker_grads(encoded, self.weight)
        from repro.obs.metrics import get_active_registry

        registry = get_active_registry()
        if registry is not None:
            registry.counter(
                "parallel.steps", help="aggregated data-parallel steps"
            ).inc()
            registry.histogram(
                "parallel.step_seconds",
                help="wall time per aggregated step (compute + merge)",
            ).observe(time.perf_counter() - started)
        return loss_value, logs

    def close(self) -> None:
        """Stop workers and restore private parameter storage."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(5.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            finally:
                conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._conns = []
        self._processes = []
        if self._slab is not None:
            self._slab.release()
            self._slab = None
