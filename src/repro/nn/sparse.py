"""Row-sparse gradients for embedding tables.

A training batch of a few hundred rows touches a tiny fraction of an
industrial id vocabulary, yet a dense backward pass materialises (and the
optimizers then sweep) the full ``num_embeddings x dim`` table on every
step.  :class:`SparseGrad` is the engine's answer: a ``(indices, rows)``
pair standing in for a mostly-zero dense gradient.  The embedding lookup
backward emits one, :meth:`Tensor.backward` knows how to merge them with
each other and with dense gradients, and the optimizers apply row-wise
lazy updates when they see one (see ``docs/performance.md``).

Deduplication of repeated ids uses an argsort + segment-sum
(``np.add.reduceat`` over run boundaries) rather than ``np.add.at``; the
scatter-add ufunc is an order of magnitude slower because it cannot
vectorise potentially-colliding updates.

The representation intentionally behaves like an ndarray where the rest of
the codebase (gradient clipping, norm telemetry, tests) expects one:

* ``numpy`` conversion via ``__array__`` (densify),
* scalar ``*``, ``*=``, ``**``, ``abs`` and ``sum()`` stay sparse,
* ``sparse + dense`` densifies, ``sparse + sparse`` stays sparse.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "SparseGrad",
    "sparse_grads_enabled",
    "use_sparse_grads",
]

# Global switch consulted by ``embedding_lookup``'s backward.  Kept here so
# benchmarks and tests can measure the dense legacy path against the sparse
# fast path inside one process.
_SPARSE_GRADS_ENABLED = True


def sparse_grads_enabled() -> bool:
    """Whether embedding backwards emit :class:`SparseGrad` (the default)."""
    return _SPARSE_GRADS_ENABLED


class use_sparse_grads:
    """Context manager toggling the sparse embedding-gradient fast path.

    >>> with use_sparse_grads(False):
    ...     ...  # embedding backwards materialise dense tables (legacy)
    """

    def __init__(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def __enter__(self) -> "use_sparse_grads":
        global _SPARSE_GRADS_ENABLED
        self._previous = _SPARSE_GRADS_ENABLED
        _SPARSE_GRADS_ENABLED = self._enabled
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _SPARSE_GRADS_ENABLED
        _SPARSE_GRADS_ENABLED = self._previous


class SparseGrad:
    """A row-sparse gradient of a 2-D parameter.

    Parameters
    ----------
    shape:
        Shape of the dense parameter the gradient belongs to.
    indices:
        1-D integer array of row ids; may contain repeats until
        :meth:`compact` is called.
    rows:
        ``(len(indices), shape[1])`` float array of per-row gradients.
    compacted:
        True when ``indices`` is already sorted and duplicate-free.
    """

    __slots__ = ("shape", "indices", "rows", "compacted")

    def __init__(
        self,
        shape: Tuple[int, ...],
        indices: np.ndarray,
        rows: np.ndarray,
        compacted: bool = False,
    ) -> None:
        if len(shape) != 2:
            raise ValueError(f"SparseGrad targets 2-D parameters, got shape {shape}")
        indices = np.asarray(indices)
        rows = np.asarray(rows)
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
        if rows.shape != (indices.size, shape[1]):
            raise ValueError(
                f"rows must have shape ({indices.size}, {shape[1]}), got {rows.shape}"
            )
        self.shape = tuple(shape)
        self.indices = indices
        self.rows = rows
        self.compacted = bool(compacted)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        indices: np.ndarray,
        rows: np.ndarray,
        shape: Tuple[int, ...],
        dedup: bool = True,
    ) -> "SparseGrad":
        """Build a gradient from (possibly repeated) row updates.

        With ``dedup`` (the default) repeated ids are summed immediately via
        the sort/segment-sum kernel, so consumers see unique rows.
        """
        grad = cls(shape, np.asarray(indices).reshape(-1), rows, compacted=False)
        return grad.compact() if dedup else grad

    def compact(self) -> "SparseGrad":
        """Sum duplicate row ids in place; idempotent and returns ``self``.

        Sorts the ids, then handles the two regimes separately.  Large id
        vocabularies sampled by a small batch are *mostly collision-free*
        (512 draws from 200k ids repeat ~1 row), so the common case is a
        pure permutation: one gather, no summation.  When duplicates do
        exist, the run *leaders* are gathered and only the few duplicate
        rows are folded in with ``np.add.at`` — per-segment
        ``np.add.reduceat`` costs ~150us for 500 near-singleton segments
        because each segment is a separate ufunc reduction, while the
        scatter-add over the handful of actual duplicates is near-free.
        Both paths add rows in first-appearance order (stable sort +
        in-order scatter), matching the legacy dense accumulation bit for
        bit.
        """
        if self.compacted:
            return self
        if self.indices.size == 0:
            self.compacted = True
            return self
        order = np.argsort(self.indices, kind="stable")
        sorted_indices = self.indices[order]
        is_run_start = np.empty(sorted_indices.size, dtype=bool)
        is_run_start[0] = True
        np.not_equal(sorted_indices[1:], sorted_indices[:-1], out=is_run_start[1:])
        boundaries = np.flatnonzero(is_run_start)
        self.indices = sorted_indices[boundaries]
        if boundaries.size == sorted_indices.size:
            # No duplicates: the "dedup" is a permutation.
            self.rows = self.rows[order]
        else:
            sorted_rows = self.rows[order]
            leaders = np.ascontiguousarray(sorted_rows[boundaries])
            duplicate_mask = ~is_run_start
            segment_ids = np.cumsum(is_run_start) - 1
            np.add.at(  # repro-lint: disable=ATN003 -- segment-sum tail: scatter-adds only the duplicate rows (a handful per batch), not a dense table
                leaders, segment_ids[duplicate_mask], sorted_rows[duplicate_mask]
            )
            self.rows = leaders
        self.compacted = True
        return self

    def copy(self) -> "SparseGrad":
        """Deep copy (own buffers)."""
        return SparseGrad(
            self.shape, self.indices.copy(), self.rows.copy(), self.compacted
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self):
        return self.rows.dtype

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nnz_rows(self) -> int:
        """Number of distinct rows carrying gradient."""
        return int(self.compact().indices.size)

    def __repr__(self) -> str:
        return (
            f"SparseGrad(shape={self.shape}, rows={self.indices.size}, "
            f"compacted={self.compacted})"
        )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_dense(self, dtype=None) -> np.ndarray:
        """Materialise the dense gradient table."""
        compacted = self.compact()
        dense = np.zeros(self.shape, dtype=dtype or self.rows.dtype)
        if compacted.indices.size:
            dense[compacted.indices] = compacted.rows
        return dense

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        # Lets numpy consumers (``np.asarray``, ``assert_allclose``, ufuncs
        # on mixed operands) transparently densify.
        return self.to_dense(dtype=dtype)

    def add_into(self, dense: np.ndarray) -> np.ndarray:
        """Scatter-add this gradient into ``dense`` in place.

        Raises
        ------
        ValueError
            On a shape mismatch, or when ``dense`` overlaps this
            gradient's row storage — an indexed read-modify-write into a
            buffer that aliases its own source silently corrupts both.
        """
        if dense.shape != self.shape:
            raise ValueError(f"shape mismatch: {dense.shape} vs {self.shape}")
        compacted = self.compact()
        if compacted.indices.size:
            # Bounds-only check: O(1), and a bounds overlap between a
            # gradient's rows and its accumulation target is already a
            # buffer-discipline violation in this engine.
            if np.may_share_memory(dense, compacted.rows):
                raise ValueError(
                    "SparseGrad.add_into target aliases the gradient's own "
                    "row storage; copy one side before accumulating"
                )
            dense[compacted.indices] += compacted.rows
        return dense

    # ------------------------------------------------------------------
    # Arithmetic (sparse-preserving where possible)
    # ------------------------------------------------------------------
    def merge(self, other: "SparseGrad") -> "SparseGrad":
        """Sum of two sparse gradients; stays sparse, defers dedup."""
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {other.shape} vs {self.shape}")
        if self.indices.size == 0:
            return other.copy()
        if other.indices.size == 0:
            return self.copy()
        return SparseGrad(
            self.shape,
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.rows, other.rows]),
            compacted=False,
        )

    def __add__(self, other):
        if isinstance(other, SparseGrad):
            return self.merge(other)
        other = np.asarray(other)
        result = np.array(other, dtype=np.result_type(other, self.rows), copy=True)
        return self.add_into(result)

    __radd__ = __add__

    def __mul__(self, scalar):
        scalar = self._require_scalar(scalar, "*")
        return SparseGrad(self.shape, self.indices, self.rows * scalar, self.compacted)

    __rmul__ = __mul__

    def __imul__(self, scalar):
        scalar = self._require_scalar(scalar, "*=")
        self.rows *= scalar
        return self

    def __neg__(self):
        return SparseGrad(self.shape, self.indices, -self.rows, self.compacted)

    def __pow__(self, exponent):
        exponent = self._require_scalar(exponent, "**")
        compacted = self.compact()
        return SparseGrad(
            self.shape, compacted.indices, compacted.rows ** exponent, compacted=True
        )

    def __abs__(self):
        compacted = self.compact()
        return SparseGrad(
            self.shape, compacted.indices, np.abs(compacted.rows), compacted=True
        )

    def sum(self) -> float:
        """Sum over the (implicit) dense table — zeros contribute nothing."""
        return float(self.rows.sum())

    def __getitem__(self, index):
        # Convenience for inspection/tests; materialises the dense table.
        return self.to_dense()[index]

    @staticmethod
    def _require_scalar(value, op: str):
        if isinstance(value, (int, float, np.floating, np.integer)):
            return value
        raise TypeError(f"SparseGrad only supports scalar {op}, got {type(value)!r}")
