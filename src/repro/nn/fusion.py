"""Graph-level fusion pass: substitute fused modules into a model tree.

The fused kernels (``Tensor._fused_linear_relu`` / ``_fused_cross`` /
``_fused_mlp``) are exposed as opt-in modules in ``repro.nn.layers``;
:func:`fuse` rewrites an *existing* model in place so registry models
(``repro.core.towers`` / ``atnn`` / ``standard_dnn``) pick them up with
no model-code changes:

* an :class:`~repro.nn.layers.mlp.MLP` whose stack is strictly
  ``Linear`` / (``ReLU`` | ``Identity``) pairs becomes a
  :class:`~repro.nn.layers.mlp.FusedMLP` (one tape node per forward);
* every :class:`~repro.nn.layers.cross.CrossLayer` becomes a
  :class:`~repro.nn.layers.cross.FusedCrossLayer`.

Substitution shares the original ``Parameter`` objects and re-registers
replacements under the same attribute/positional names, so optimizer
state, ``state_dict`` layouts and checkpoints are untouched.  Stacks the
fused kernels cannot express (dropout, sigmoid/tanh) are skipped with a
recorded reason and keep their exact unfused behaviour.

Every fused forward ticks the ``autograd.fusion_hits`` counter (in the
active metrics registry and a process-local tally), so a run's telemetry
shows how much of its graph actually ran fused.

>>> from repro.nn.fusion import fuse
>>> report = fuse(model)            # doctest: +SKIP
>>> print(report.to_text())         # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "FusionReport",
    "fuse",
    "record_fusion_hit",
    "fusion_hits",
    "reset_fusion_hits",
]

# Process-local tally of fused-op forward calls, by kind.  The active
# metrics registry (when any) gets the same ticks under the single
# ``autograd.fusion_hits`` counter name.
_HITS: Dict[str, int] = {
    "linear_relu": 0,
    "cross": 0,
    "mlp": 0,
    "embedding_bag": 0,
}


def record_fusion_hit(kind: str) -> None:
    """Tick the fusion counter for one fused forward call."""
    _HITS[kind] = _HITS.get(kind, 0) + 1
    from repro.obs.metrics import get_active_registry

    registry = get_active_registry()
    if registry is not None:
        registry.counter(
            "autograd.fusion_hits",
            help="forward calls served by fused kernels",
        ).inc()


def fusion_hits() -> Dict[str, int]:
    """Fused forward calls so far in this process, by kind."""
    return dict(_HITS)


def reset_fusion_hits() -> None:
    """Zero the process-local fusion tally (benchmarks, tests)."""
    for key in _HITS:
        _HITS[key] = 0


@dataclass
class FusionReport:
    """What :func:`fuse` replaced and what it left alone (and why)."""

    replaced: List[Tuple[str, str]] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def num_replaced(self) -> int:
        return len(self.replaced)

    def to_text(self) -> str:
        lines = [f"fusion: {self.num_replaced} module(s) replaced"]
        for path, kind in self.replaced:
            lines.append(f"  + {path or '<root>'}: {kind}")
        for path, reason in self.skipped:
            lines.append(f"  - {path or '<root>'}: skipped ({reason})")
        return "\n".join(lines)


def fuse(model) -> FusionReport:
    """Substitute fused modules throughout ``model``, in place.

    Returns a :class:`FusionReport`; safe to call on an already-fused
    tree (idempotent — fused modules are left alone).
    """
    report = FusionReport()
    _fuse_children(model, "", report)
    return report


def _fuse_children(module, prefix: str, report: FusionReport) -> None:
    # Imports are local so layer modules can import record_fusion_hit
    # from here without a cycle.
    from repro.nn.layers.cross import CrossLayer, FusedCrossLayer
    from repro.nn.layers.embedding import FeatureEmbeddings, FusedFeatureEmbeddings
    from repro.nn.layers.mlp import MLP, FusedMLP
    from repro.nn.module import ModuleList

    for name, child in list(module._modules.items()):
        path = f"{prefix}{name}"
        if isinstance(child, (FusedMLP, FusedCrossLayer, FusedFeatureEmbeddings)):
            continue
        replacement = None
        kind = None
        if type(child) is MLP:
            replacement, reason = FusedMLP.from_mlp(child)
            kind = "fused_mlp"
            if replacement is None:
                report.skipped.append((path, reason))
        elif type(child) is CrossLayer:
            replacement = FusedCrossLayer.from_layer(child)
            kind = "fused_cross"
        elif type(child) is FeatureEmbeddings and len(child.feature_names) > 1:
            replacement = FusedFeatureEmbeddings.from_bank(child)
            kind = "fused_embedding_bag"
        if replacement is not None:
            if isinstance(module, ModuleList):
                module.replace(int(name), replacement)
            else:
                setattr(module, name, replacement)
            report.replaced.append((path, kind))
        else:
            _fuse_children(child, f"{path}.", report)
