"""Deep & Cross Network block combining a cross network and a deep MLP.

The DCN block runs a :class:`~repro.nn.layers.cross.CrossNetwork` and a deep
MLP in parallel over the same input and concatenates their outputs, exactly
as in Wang et al. (ADKDD 2017) and as used by every encoder/generator tower
in the ATNN paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers.cross import CrossNetwork
from repro.nn.layers.mlp import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat

__all__ = ["DCN", "FusedDCN"]


class DCN(Module):
    """Parallel cross + deep block.

    Parameters
    ----------
    in_features:
        Input width (the concatenated embedding block).
    deep_dims:
        Widths of the deep MLP (the paper uses 512-256-128).
    num_cross_layers:
        Depth of the cross network; 0 reduces the block to a plain deep
        tower (the TNN-FC ablation uses that path via
        :class:`~repro.nn.layers.mlp.MLP` directly).
    dropout:
        Dropout inside the deep MLP.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        deep_dims: Sequence[int],
        num_cross_layers: int = 2,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.cross = CrossNetwork(in_features, num_cross_layers, rng=rng)
        self.deep = MLP(in_features, deep_dims, dropout=dropout, rng=rng)
        self.out_features = in_features + self.deep.out_features

    def forward(self, x: Tensor) -> Tensor:
        cross_out = self.cross(x)
        deep_out = self.deep(x)
        return concat([cross_out, deep_out], axis=-1)


class FusedDCN(DCN):
    """A :class:`DCN` whose cross and deep halves run on fused kernels.

    Construction matches :class:`DCN`; afterwards the cross layers are
    swapped for :class:`~repro.nn.layers.cross.FusedCrossLayer` stages
    and the deep MLP for a :class:`~repro.nn.layers.mlp.FusedMLP` (when
    eligible — an MLP with dropout keeps the unfused path).  Parameter
    names are unchanged, so checkpoints transfer both ways.
    """

    def __init__(
        self,
        in_features: int,
        deep_dims: Sequence[int],
        num_cross_layers: int = 2,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(
            in_features,
            deep_dims,
            num_cross_layers=num_cross_layers,
            dropout=dropout,
            rng=rng,
        )
        from repro.nn.fusion import fuse

        fuse(self)
