"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["LayerNorm", "BatchNorm1d"]


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    ``y = gain * (x - mean) / sqrt(var + eps) + bias``
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_dim <= 0:
            raise ValueError(f"normalized_dim must be positive, got {normalized_dim}")
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.gain = Parameter(init.ones((normalized_dim,)), name="gain")
        self.bias = Parameter(init.zeros((normalized_dim,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"LayerNorm expected trailing dimension {self.normalized_dim}, "
                f"got shape {x.shape}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gain + self.bias


class BatchNorm1d(Module):
    """Batch normalisation over the batch dimension of a 2-D input.

    Tracks running statistics for inference mode with momentum-based
    exponential averaging, matching the standard deep-learning-framework
    semantics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gain = Parameter(init.ones((num_features,)), name="gain")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected (batch, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
            normed = centered * (var + self.eps) ** -0.5
        else:
            centered = x - Tensor(self.running_mean[None, :])
            normed = centered * Tensor(
                1.0 / np.sqrt(self.running_var[None, :] + self.eps)
            )
        return normed * self.gain + self.bias
