"""Multi-layer perceptron block."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers.activation import get_activation
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor

__all__ = ["MLP"]


class MLP(Module):
    """A stack of fully connected layers with activations and dropout.

    This is the "deep" half of the DCN towers and the fully connected head
    the paper places after the cross network (256-256-256-128 in the ATNN
    configuration).

    Parameters
    ----------
    in_features:
        Input width.
    hidden_dims:
        Output width of every layer, in order.
    activation:
        Activation between layers (by name, see
        :func:`repro.nn.layers.activation.get_activation`).
    output_activation:
        Activation after the final layer; defaults to the same as
        ``activation``.  Pass ``"identity"`` for a linear output.
    dropout:
        Dropout probability applied after every activation (0 disables).
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        activation: str = "relu",
        output_activation: Optional[str] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not hidden_dims:
            raise ValueError("hidden_dims must contain at least one layer width")
        self.in_features = in_features
        self.out_features = hidden_dims[-1]
        output_activation = output_activation or activation

        layers = ModuleList()
        widths = [in_features, *hidden_dims]
        for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            is_last = index == len(hidden_dims) - 1
            layers.append(get_activation(output_activation if is_last else activation))
            if dropout > 0.0 and not is_last:
                layers.append(Dropout(dropout, rng=rng))
        self.layers = layers

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
