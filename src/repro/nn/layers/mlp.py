"""Multi-layer perceptron block."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers.activation import Identity, ReLU, get_activation
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor, fused_mlp

__all__ = ["MLP", "FusedMLP"]


class MLP(Module):
    """A stack of fully connected layers with activations and dropout.

    This is the "deep" half of the DCN towers and the fully connected head
    the paper places after the cross network (256-256-256-128 in the ATNN
    configuration).

    Parameters
    ----------
    in_features:
        Input width.
    hidden_dims:
        Output width of every layer, in order.
    activation:
        Activation between layers (by name, see
        :func:`repro.nn.layers.activation.get_activation`).
    output_activation:
        Activation after the final layer; defaults to the same as
        ``activation``.  Pass ``"identity"`` for a linear output.
    dropout:
        Dropout probability applied after every activation (0 disables).
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        activation: str = "relu",
        output_activation: Optional[str] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not hidden_dims:
            raise ValueError("hidden_dims must contain at least one layer width")
        self.in_features = in_features
        self.out_features = hidden_dims[-1]
        output_activation = output_activation or activation

        layers = ModuleList()
        widths = [in_features, *hidden_dims]
        for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            is_last = index == len(hidden_dims) - 1
            layers.append(get_activation(output_activation if is_last else activation))
            if dropout > 0.0 and not is_last:
                layers.append(Dropout(dropout, rng=rng))
        self.layers = layers

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class FusedMLP(Module):
    """An :class:`MLP` replayed through one fused tape node per forward.

    Wraps an existing MLP whose layer stack is strictly alternating
    ``Linear`` / (``ReLU`` | ``Identity``): the whole stack becomes a
    single :func:`repro.nn.tensor.fused_mlp` call, so an L-layer MLP
    records one graph node instead of ~3L.  The wrapped MLP's ``layers``
    container is re-registered under the same name, preserving every
    ``state_dict`` path, and parameters are shared (not copied).

    Use :meth:`from_mlp` (or the :func:`repro.nn.fusion.fuse` pass) to
    build one; it returns ``None`` with a reason for stacks the fused
    kernel cannot express (dropout, sigmoid/tanh/leaky-relu).
    """

    def __init__(self, mlp: MLP, specs) -> None:
        super().__init__()
        self.in_features = mlp.in_features
        self.out_features = mlp.out_features
        self.layers = mlp.layers
        # (weight, bias_or_None, relu) triples; Parameter objects are
        # stable across to_dtype/load_state_dict (both mutate in place),
        # so the triples can be cached at build time.
        self._triples = tuple(
            (linear.weight, linear.bias, activate) for linear, activate in specs
        )

    @classmethod
    def from_mlp(cls, mlp: MLP):
        """``(FusedMLP, None)`` for an eligible MLP, else ``(None, reason)``."""
        items = list(mlp.layers)
        specs = []
        index = 0
        while index < len(items):
            linear = items[index]
            if type(linear) is not Linear:
                return None, (
                    f"unsupported layer {type(linear).__name__} at "
                    f"position {index}"
                )
            if index + 1 >= len(items):
                return None, f"dangling Linear at position {index}"
            activation = items[index + 1]
            if isinstance(activation, ReLU):
                activate = True
            elif isinstance(activation, Identity):
                activate = False
            else:
                return None, (
                    f"unsupported activation {type(activation).__name__} at "
                    f"position {index + 1}"
                )
            specs.append((linear, activate))
            index += 2
        if not specs:
            return None, "empty layer stack"
        return cls(mlp, specs), None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[-1] != self.in_features:
            raise ValueError(
                f"FusedMLP expected 2-D input with {self.in_features} "
                f"features, got shape {x.shape}"
            )
        from repro.nn.fusion import record_fusion_hit

        record_fusion_hit("mlp")
        return fused_mlp(x, self._triples)

    def __repr__(self) -> str:
        return (
            f"FusedMLP(in_features={self.in_features}, "
            f"out_features={self.out_features}, layers={len(self._triples)})"
        )
