"""Neural network layers built on the autograd engine."""

from repro.nn.layers.activation import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)
from repro.nn.layers.cross import CrossLayer, CrossNetwork
from repro.nn.layers.dcn import DCN
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding, EmbeddingBag, FeatureEmbeddings
from repro.nn.layers.linear import Linear
from repro.nn.layers.mlp import MLP
from repro.nn.layers.normalization import BatchNorm1d, LayerNorm

__all__ = [
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "CrossLayer",
    "CrossNetwork",
    "DCN",
    "Dropout",
    "Embedding",
    "EmbeddingBag",
    "FeatureEmbeddings",
    "Linear",
    "MLP",
    "BatchNorm1d",
    "LayerNorm",
]
