"""Neural network layers built on the autograd engine."""

from repro.nn.layers.activation import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)
from repro.nn.layers.cross import (
    CrossLayer,
    CrossNetwork,
    FusedCrossLayer,
    FusedCrossNetwork,
)
from repro.nn.layers.dcn import DCN, FusedDCN
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import (
    Embedding,
    EmbeddingBag,
    FeatureEmbeddings,
    FusedFeatureEmbeddings,
)
from repro.nn.layers.linear import FusedLinearReLU, Linear
from repro.nn.layers.mlp import MLP, FusedMLP
from repro.nn.layers.normalization import BatchNorm1d, LayerNorm

__all__ = [
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "CrossLayer",
    "CrossNetwork",
    "FusedCrossLayer",
    "FusedCrossNetwork",
    "DCN",
    "FusedDCN",
    "FusedFeatureEmbeddings",
    "Dropout",
    "Embedding",
    "EmbeddingBag",
    "FeatureEmbeddings",
    "FusedLinearReLU",
    "Linear",
    "MLP",
    "FusedMLP",
    "BatchNorm1d",
    "LayerNorm",
]
