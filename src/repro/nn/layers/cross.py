"""Cross network from Deep & Cross Network (Wang et al., ADKDD 2017).

Each cross layer computes::

    x_{l+1} = x_0 * (x_l · w_l) + b_l + x_l

which builds explicit bounded-degree feature interactions: after ``L`` layers
the network contains all cross terms of the input features up to degree
``L + 1``, at a parameter cost linear in the input width.  The ATNN paper
uses this block inside every tower to replace manual 2- and 3-level feature
engineering (item PV x seller PV x category PV style crosses).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor, fused_cross

__all__ = ["CrossLayer", "CrossNetwork", "FusedCrossLayer", "FusedCrossNetwork"]


class CrossLayer(Module):
    """One explicit feature-crossing layer: ``x0 * (x · w) + b + x``."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError(f"cross layer width must be positive, got {dim}")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.weight = Parameter(
            init.normal(rng, (dim, 1), std=1.0 / np.sqrt(dim)), name="cross_weight"
        )
        self.bias = Parameter(init.zeros((dim,)), name="cross_bias")

    def forward(self, x0: Tensor, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim or x0.shape[-1] != self.dim:
            raise ValueError(
                f"cross layer expected width {self.dim}, got x0={x0.shape}, x={x.shape}"
            )
        # (batch, 1) scalar interaction weight per row, then outer with x0.
        projection = x @ self.weight
        return x0 * projection + self.bias + x


class CrossNetwork(Module):
    """A stack of :class:`CrossLayer` sharing the original input ``x0``.

    Parameters
    ----------
    dim:
        Input (and output) width.
    num_layers:
        Number of cross layers; interactions up to degree ``num_layers + 1``.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        dim: int,
        num_layers: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 0:
            raise ValueError(f"num_layers must be non-negative, got {num_layers}")
        self.dim = dim
        self.num_layers = num_layers
        self.layers = ModuleList(CrossLayer(dim, rng=rng) for _ in range(num_layers))

    def forward(self, x: Tensor) -> Tensor:
        x0 = x
        out = x
        for layer in self.layers:
            out = layer(x0, out)
        return out


class FusedCrossLayer(CrossLayer):
    """A :class:`CrossLayer` whose forward records one fused tape node.

    ``x0 * (x · w) + b + x`` is computed by a single kernel
    (:func:`repro.nn.tensor.fused_cross`) instead of a four-node chain;
    the backward closure shares one row-sum projection across all four
    parent gradients.  Parameter names match ``CrossLayer`` exactly, so
    substitution preserves ``state_dict`` layouts.
    """

    @classmethod
    def from_layer(cls, layer: CrossLayer) -> "FusedCrossLayer":
        """Wrap an existing layer's parameters (shared, not copied)."""
        fused = cls.__new__(cls)
        Module.__init__(fused)
        fused.dim = layer.dim
        fused.weight = layer.weight
        fused.bias = layer.bias
        return fused

    def forward(self, x0: Tensor, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim or x0.shape[-1] != self.dim:
            raise ValueError(
                f"cross layer expected width {self.dim}, got x0={x0.shape}, x={x.shape}"
            )
        from repro.nn.fusion import record_fusion_hit

        record_fusion_hit("cross")
        return fused_cross(x0, x, self.weight, self.bias)


class FusedCrossNetwork(CrossNetwork):
    """A :class:`CrossNetwork` built from :class:`FusedCrossLayer` stages."""

    def __init__(
        self,
        dim: int,
        num_layers: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(dim, num_layers, rng=rng)
        for index, layer in enumerate(list(self.layers)):
            self.layers.replace(index, FusedCrossLayer.from_layer(layer))
