"""Embedding table layers.

The ATNN paper maps each categorical feature (user id, occupation, item
category, ...) to a fixed-length dense vector; the generator and the item
encoder *share* the item-profile embedding tables.  Sharing is expressed here
simply by passing the same :class:`Embedding` instance to both towers — the
module system deduplicates shared parameters at optimisation time.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concat, embedding_lookup, fused_embedding_bag

__all__ = [
    "Embedding",
    "EmbeddingBag",
    "FeatureEmbeddings",
    "FusedFeatureEmbeddings",
]


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size.
    embedding_dim:
        Dimension of each embedding vector.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError(
                "vocabulary and embedding dimension must be positive, got "
                f"{num_embeddings}x{embedding_dim}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal(rng, (num_embeddings, embedding_dim), std=0.05),
            name="embedding",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        """Look up ``indices`` (any integer array) → shape ``indices.shape + (D,)``."""
        return embedding_lookup(self.weight, np.asarray(indices))

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class EmbeddingBag(Module):
    """Mean-pooled embedding of variable-length id lists.

    Used for multi-valued categorical features (e.g. a user's preferred
    categories).  Input is a padded integer matrix plus a validity mask.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.embedding = Embedding(num_embeddings, embedding_dim, rng=rng)
        self.embedding_dim = embedding_dim

    def forward(self, indices: np.ndarray, mask: np.ndarray) -> Tensor:
        """Mean-pool embeddings of valid positions.

        Parameters
        ----------
        indices:
            Integer array of shape ``(batch, max_len)``.
        mask:
            Float/bool array of the same shape; 1 marks a valid id.
        """
        indices = np.asarray(indices)
        mask = np.asarray(mask, dtype=self.embedding.weight.data.dtype)
        if indices.shape != mask.shape:
            raise ValueError(
                f"indices shape {indices.shape} and mask shape {mask.shape} differ"
            )
        vectors = self.embedding(indices)  # (batch, max_len, dim)
        masked = vectors * Tensor(mask[..., None])
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        return masked.sum(axis=1) * Tensor(1.0 / counts)


class FeatureEmbeddings(Module):
    """A bank of embedding tables, one per categorical feature.

    Produces the concatenation of each feature's embedding, in the order the
    features were declared — the standard "embedding layer" block of the
    paper's Figures 3–4.

    Parameters
    ----------
    vocab_sizes:
        Mapping from feature name to vocabulary size.
    embedding_dims:
        Mapping from feature name to embedding dimension (the paper uses
        e.g. 16 for user id, 8 for occupation, 6 for item category).
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        vocab_sizes: Mapping[str, int],
        embedding_dims: Mapping[str, int],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if set(vocab_sizes) != set(embedding_dims):
            raise ValueError(
                "vocab_sizes and embedding_dims must cover the same features; "
                f"got {sorted(vocab_sizes)} vs {sorted(embedding_dims)}"
            )
        self.feature_names: List[str] = list(vocab_sizes)
        self._tables: Dict[str, Embedding] = {}
        for name in self.feature_names:
            table = Embedding(vocab_sizes[name], embedding_dims[name], rng=rng)
            self._tables[name] = table
            self.register_module(f"emb_{name}", table)

    @property
    def output_dim(self) -> int:
        """Total width of the concatenated embedding block."""
        return sum(self._tables[name].embedding_dim for name in self.feature_names)

    def table(self, name: str) -> Embedding:
        """Return the underlying table for one feature."""
        return self._tables[name]

    def forward(self, features: Mapping[str, np.ndarray]) -> Tensor:
        """Embed and concatenate the declared features.

        Parameters
        ----------
        features:
            Mapping from feature name to an integer id array of shape
            ``(batch,)``.  Extra keys are ignored; missing keys raise.
        """
        missing = [name for name in self.feature_names if name not in features]
        if missing:
            raise KeyError(f"missing categorical features: {missing}")
        parts = [self._tables[name](features[name]) for name in self.feature_names]
        if len(parts) == 1:
            return parts[0]
        return concat(parts, axis=-1)


class FusedFeatureEmbeddings(FeatureEmbeddings):
    """:class:`FeatureEmbeddings` running the whole block as one fused node.

    The unfused bank records one lookup node per table plus a concat; the
    fused forward gathers every table straight into column slices of a
    single output buffer (``Tensor._fused_embedding_bag``), and the
    backward hands each table a view of its gradient columns.  Built by
    the :func:`repro.nn.fusion.fuse` pass via :meth:`from_bank`, which
    re-registers the *same* :class:`Embedding` children under the same
    names — parameter identity, optimizer state and ``state_dict``
    layouts are untouched.
    """

    @classmethod
    def from_bank(cls, bank: FeatureEmbeddings) -> "FusedFeatureEmbeddings":
        fused = cls.__new__(cls)
        Module.__init__(fused)
        fused.feature_names = list(bank.feature_names)
        fused._tables = dict(bank._tables)
        for name in fused.feature_names:
            fused.register_module(f"emb_{name}", fused._tables[name])
        return fused

    def forward(self, features: Mapping[str, np.ndarray]) -> Tensor:
        missing = [name for name in self.feature_names if name not in features]
        if missing:
            raise KeyError(f"missing categorical features: {missing}")
        from repro.nn.fusion import record_fusion_hit

        record_fusion_hit("embedding_bag")
        return fused_embedding_bag(
            [self._tables[name].weight for name in self.feature_names],
            [np.asarray(features[name]) for name in self.feature_names],
        )
