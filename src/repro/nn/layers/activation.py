"""Activation layers wrapping the tensor-level nonlinearities."""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Identity", "get_activation"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    """No-op activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "identity": Identity,
    "linear": Identity,
}


def get_activation(name: str) -> Module:
    """Instantiate an activation by name.

    Raises
    ------
    ValueError
        If the name is unknown.
    """
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
