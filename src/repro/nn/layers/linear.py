"""Fully connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, fused_linear_relu

__all__ = ["Linear", "FusedLinearReLU"]


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features:
        Size of each input sample.
    out_features:
        Size of each output sample.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator for weight initialisation; a fresh default generator is
        used if omitted (discouraged for reproducible experiments).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got {in_features}x{out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, (in_features, out_features)), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected input with {self.in_features} features, "
                f"got shape {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class FusedLinearReLU(Module):
    """``relu(x W + b)`` recorded as one fused tape node.

    Drop-in for a ``Linear`` followed by a ``ReLU``: same parameter names
    (``weight``/``bias``), one graph node instead of three, and a single
    backward closure that masks the incoming gradient once.  Build one
    directly, or wrap an existing layer with :meth:`from_linear` (the
    parameters are shared, not copied, so optimizer state and
    ``state_dict`` names carry over).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got {in_features}x{out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, (in_features, out_features)), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    @classmethod
    def from_linear(cls, linear: Linear) -> "FusedLinearReLU":
        """Wrap an existing ``Linear``'s parameters (shared, not copied)."""
        fused = cls.__new__(cls)
        Module.__init__(fused)
        fused.in_features = linear.in_features
        fused.out_features = linear.out_features
        fused.weight = linear.weight
        fused.bias = linear.bias
        return fused

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"FusedLinearReLU expected input with {self.in_features} "
                f"features, got shape {x.shape}"
            )
        from repro.nn.fusion import record_fusion_hit

        record_fusion_hit("linear_relu")
        return fused_linear_relu(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"FusedLinearReLU(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )
