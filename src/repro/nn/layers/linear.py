"""Fully connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features:
        Size of each input sample.
    out_features:
        Size of each output sample.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator for weight initialisation; a fresh default generator is
        used if omitted (discouraged for reproducible experiments).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got {in_features}x{out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, (in_features, out_features)), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected input with {self.in_features} features, "
                f"got shape {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )
