"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is fully deterministic under a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
]


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight shape."""
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """He uniform, appropriate ahead of ReLU activations."""
    fan_in, _ = _fan(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """He normal: N(0, 2 / fan_in)."""
    fan_in, _ = _fan(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def uniform(rng: np.random.Generator, shape: Tuple[int, ...],
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(rng: np.random.Generator, shape: Tuple[int, ...],
           mean: float = 0.0, std: float = 0.01) -> np.ndarray:
    """Plain normal initialisation."""
    return rng.normal(mean, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (normalisation gains)."""
    return np.ones(shape)
