"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is fully deterministic under a seed.  Every
initialiser accepts an optional ``dtype``; when omitted, the engine-wide
default from :func:`repro.nn.tensor.get_default_dtype` applies.  Random
draws always happen in float64 and are cast afterwards, so a seed yields
the same weights (up to rounding) in every precision.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
]


def _cast(values: np.ndarray, dtype: Optional[np.dtype]) -> np.ndarray:
    from repro.nn.tensor import get_default_dtype

    target = np.dtype(dtype) if dtype is not None else get_default_dtype()
    return values.astype(target, copy=False)


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight shape."""
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...],
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def xavier_normal(rng: np.random.Generator, shape: Tuple[int, ...],
                  dtype=None) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def he_uniform(rng: np.random.Generator, shape: Tuple[int, ...],
               dtype=None) -> np.ndarray:
    """He uniform, appropriate ahead of ReLU activations."""
    fan_in, _ = _fan(shape)
    bound = np.sqrt(6.0 / fan_in)
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...],
              dtype=None) -> np.ndarray:
    """He normal: N(0, 2 / fan_in)."""
    fan_in, _ = _fan(shape)
    return _cast(rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape), dtype)


def uniform(rng: np.random.Generator, shape: Tuple[int, ...],
            low: float = -0.05, high: float = 0.05, dtype=None) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return _cast(rng.uniform(low, high, size=shape), dtype)


def normal(rng: np.random.Generator, shape: Tuple[int, ...],
           mean: float = 0.0, std: float = 0.01, dtype=None) -> np.ndarray:
    """Plain normal initialisation."""
    return _cast(rng.normal(mean, std, size=shape), dtype)


def zeros(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return _cast(np.zeros(shape), dtype)


def ones(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    """All-one initialisation (normalisation gains)."""
    return _cast(np.ones(shape), dtype)
