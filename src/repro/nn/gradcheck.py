"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every op and layer against central finite
differences; also a handy debugging tool when extending the engine.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn.sparse import SparseGrad
from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[[], Tensor],
    tensor: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must recompute the scalar output from the *current* contents of
    ``tensor.data``; this function perturbs entries in place and restores
    them afterwards.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = fn().item()
        flat[index] = original - epsilon
        lower = fn().item()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    epsilon: Optional[float] = None,
    rtol: Optional[float] = None,
    atol: Optional[float] = None,
) -> None:
    """Assert analytic gradients match finite differences for ``tensors``.

    Tolerances and the finite-difference step default by dtype: the
    classic ``epsilon=1e-6, rtol=1e-4, atol=1e-6`` for float64, and a
    coarser ``epsilon=1e-3, rtol=1e-2, atol=1e-3`` when any checked
    tensor is float32 (central differences lose roughly half the
    mantissa to cancellation).  Row-sparse analytic gradients are
    densified before comparison.

    Raises
    ------
    AssertionError
        With a detailed report when any gradient disagrees.
    """
    float32 = any(t.data.dtype == np.float32 for t in tensors)
    if epsilon is None:
        epsilon = 1e-3 if float32 else 1e-6
    if rtol is None:
        rtol = 1e-2 if float32 else 1e-4
    if atol is None:
        atol = 1e-3 if float32 else 1e-6
    for tensor in tensors:
        tensor.zero_grad()
    output = fn()
    if output.size != 1:
        raise ValueError(f"gradient check requires a scalar output, got {output.shape}")
    output.backward()
    for position, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            raise ValueError(f"tensor #{position} does not require grad")
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if isinstance(analytic, SparseGrad):
            analytic = analytic.to_dense()
        numeric = numerical_gradient(fn, tensor, epsilon=epsilon)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for tensor #{position} "
                f"(shape {tensor.shape}): max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
