"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every op and layer against central finite
differences; also a handy debugging tool when extending the engine.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[[], Tensor],
    tensor: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must recompute the scalar output from the *current* contents of
    ``tensor.data``; this function perturbs entries in place and restores
    them afterwards.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = fn().item()
        flat[index] = original - epsilon
        lower = fn().item()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert analytic gradients match finite differences for ``tensors``.

    Raises
    ------
    AssertionError
        With a detailed report when any gradient disagrees.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = fn()
    if output.size != 1:
        raise ValueError(f"gradient check requires a scalar output, got {output.shape}")
    output.backward()
    for position, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            raise ValueError(f"tensor #{position} does not require grad")
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, tensor, epsilon=epsilon)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for tensor #{position} "
                f"(shape {tensor.shape}): max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
