"""User-behaviour event model for the real-time serving simulation.

The paper's deployment (Section IV-D) runs ATNN on a real-time data
engine that "can obtain user behaviors, including clicking, adding to
favorite, purchasing, etc.".  This module defines the event vocabulary and
a generator that replays plausible event streams from a synthetic world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.synthetic.tmall import TmallWorld

__all__ = [
    "EventKind",
    "Event",
    "KIND_CODES",
    "generate_event_stream",
    "event_columns",
    "join_click_outcomes",
    "join_outcome_columns",
]


class EventKind:
    """String constants for the supported behaviour events."""

    VIEW = "view"
    CLICK = "click"
    CART = "cart"
    FAVORITE = "favorite"
    PURCHASE = "purchase"
    RELEASE = "release"

    ALL = (VIEW, CLICK, CART, FAVORITE, PURCHASE, RELEASE)


# Stable integer codes for vectorised event processing (quality monitor,
# outcome joining); order matches EventKind.ALL.
KIND_CODES = {kind: code for code, kind in enumerate(EventKind.ALL)}


@dataclass(frozen=True)
class Event:
    """One behaviour event.

    Attributes
    ----------
    kind:
        One of :class:`EventKind`.
    item_id:
        Index of the item in the serving catalogue.
    user_id:
        Index of the acting user (None for RELEASE events).
    timestamp:
        Seconds since stream start (monotone within a stream).
    """

    kind: str
    item_id: int
    user_id: Optional[int]
    timestamp: float

    def __post_init__(self) -> None:
        if self.kind not in EventKind.ALL:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of {EventKind.ALL}"
            )
        if self.item_id < 0:
            raise ValueError(f"item_id must be >= 0, got {self.item_id}")


def generate_event_stream(
    world: TmallWorld,
    item_indices: Sequence[int],
    n_events: int,
    rng: np.random.Generator,
    funnel_rates: Optional[dict] = None,
) -> List[Event]:
    """Replay a plausible behaviour stream over ``item_indices``.

    Views arrive item-proportionally to ground-truth popularity; each view
    spawns downstream funnel events (click → cart/favourite → purchase)
    with popularity-scaled probabilities.

    Parameters
    ----------
    world:
        The synthetic world providing popularity ground truth.
    item_indices:
        Which new-arrival indices take part (events reference positions in
        this sequence, i.e. catalogue slots).
    n_events:
        Number of *view* events to draw (funnel events come on top).
    rng:
        Generator controlling all draws.
    funnel_rates:
        Optional overrides for ``{"click", "cart", "favorite", "purchase"}``
        base rates.
    """
    item_indices = np.asarray(item_indices)
    if item_indices.ndim != 1 or item_indices.size == 0:
        raise ValueError("item_indices must be a non-empty 1-D sequence")
    if n_events <= 0:
        raise ValueError(f"n_events must be positive, got {n_events}")

    rates = {"click": 0.5, "cart": 0.25, "favorite": 0.2, "purchase": 0.12}
    if funnel_rates:
        rates.update(funnel_rates)

    popularity = world.new_item_popularity[item_indices]
    weights = (popularity + 0.02) / (popularity + 0.02).sum()

    slots = rng.choice(item_indices.size, size=n_events, p=weights)
    users = rng.choice(
        world.config.n_users, size=n_events, p=world.user_activity
    )
    timestamps = np.sort(rng.uniform(0.0, 3600.0, size=n_events))

    events: List[Event] = []
    for position, user, timestamp in zip(slots, users, timestamps):
        position = int(position)
        catalogue_slot = int(item_indices[position])
        user = int(user)
        timestamp = float(timestamp)
        events.append(Event(EventKind.VIEW, catalogue_slot, user, timestamp))
        engagement = popularity[position]
        if rng.random() < rates["click"] * (0.5 + engagement):
            events.append(
                Event(EventKind.CLICK, catalogue_slot, user, timestamp + 1.0)
            )
            if rng.random() < rates["cart"] * (0.5 + engagement):
                events.append(
                    Event(EventKind.CART, catalogue_slot, user, timestamp + 2.0)
                )
            if rng.random() < rates["favorite"] * (0.5 + engagement):
                events.append(
                    Event(EventKind.FAVORITE, catalogue_slot, user, timestamp + 2.0)
                )
            if rng.random() < rates["purchase"] * (0.5 + engagement):
                events.append(
                    Event(EventKind.PURCHASE, catalogue_slot, user, timestamp + 5.0)
                )
    return events


# ----------------------------------------------------------------------
# Columnar views for vectorised consumers (the model-quality monitor)
# ----------------------------------------------------------------------
def event_columns(
    events: Sequence[Event],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decompose a batch of events into parallel numpy columns.

    Returns ``(kind_codes, item_ids, user_ids, timestamps)`` where kinds
    follow :data:`KIND_CODES` and a ``None`` user (RELEASE events) maps
    to ``-1``.  This is the single pass over the python event objects;
    everything downstream (cohort splitting, outcome joining, binning)
    works on the arrays.
    """
    n = len(events)
    kinds = np.fromiter(
        (KIND_CODES[event.kind] for event in events), dtype=np.int64, count=n
    )
    items = np.fromiter(
        (event.item_id for event in events), dtype=np.int64, count=n
    )
    users = np.fromiter(
        (
            -1 if event.user_id is None else event.user_id
            for event in events
        ),
        dtype=np.int64,
        count=n,
    )
    timestamps = np.fromiter(
        (event.timestamp for event in events), dtype=np.float64, count=n
    )
    return kinds, items, users, timestamps


def join_outcome_columns(
    kinds: np.ndarray,
    items: np.ndarray,
    users: np.ndarray,
    timestamps: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Join VIEW impressions with CLICKs by ``(user, item)`` within a batch.

    Returns ``(item_ids, user_ids, timestamps, clicked)`` with one row
    per impression (VIEW event).  An impression counts as clicked when
    the same ``(user, item)`` pair also emitted a CLICK in the batch —
    :func:`generate_event_stream` appends funnel events directly after
    their view, so batch-local joining loses only pairs split across an
    ingest boundary (and a repeat view by the same user shares the
    click label, a deliberate simplification).
    """
    view_mask = kinds == KIND_CODES[EventKind.VIEW]
    click_mask = kinds == KIND_CODES[EventKind.CLICK]
    items_v = items[view_mask]
    users_v = users[view_mask]
    ts_v = timestamps[view_mask]
    if items_v.size == 0:
        empty = np.zeros(0, dtype=bool)
        return items_v, users_v, ts_v, empty
    if not click_mask.any():
        return items_v, users_v, ts_v, np.zeros(items_v.size, dtype=bool)
    # Composite (item, user) keys; users are >= -1 so shift keeps them
    # non-negative inside the key.
    stride = int(max(users_v.max(), users[click_mask].max())) + 2
    view_keys = items_v * stride + (users_v + 1)
    click_keys = items[click_mask] * stride + (users[click_mask] + 1)
    # Bounded key spans take numpy's O(range) table path, ~10x faster
    # than the sort-based default at serving batch sizes.
    span = (int(items.max()) + 1) * stride
    kind = "table" if span <= (1 << 24) else None
    clicked = np.isin(view_keys, click_keys, kind=kind)
    return items_v, users_v, ts_v, clicked


def join_click_outcomes(
    events: Sequence[Event],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convenience wrapper: :func:`join_outcome_columns` over raw events."""
    return join_outcome_columns(*event_columns(events))
