"""Real-time serving simulation (the paper's Section IV-D deployment)."""

from repro.serving.engine import EngineConfig, RealTimeEngine
from repro.serving.events import Event, EventKind, generate_event_stream
from repro.serving.feature_store import ItemCounters, ItemStatisticsStore

__all__ = [
    "EngineConfig",
    "RealTimeEngine",
    "Event",
    "EventKind",
    "generate_event_stream",
    "ItemCounters",
    "ItemStatisticsStore",
]
