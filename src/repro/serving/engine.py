"""Real-time popularity engine (the paper's Section IV-D deployment).

ATNN has been deployed on a real-time data engine since August 2019; the
engine ingests live user behaviours, keeps item statistics fresh, and
recomputes new-arrival popularity for two downstream applications:
personalised search & recommendation, and smart selection of items for
promotions.  :class:`RealTimeEngine` simulates that serving loop:

* a catalogue of new arrivals enters with profiles only;
* behaviour events stream into an :class:`ItemStatisticsStore`;
* ``refresh()`` re-scores the catalogue — *cold* items through the
  generator path against the stored mean user vector (O(1) per item),
  *warm* items (enough traffic) through the statistics-aware encoder;
* ``top_promotion_candidates`` serves the smart-selection application and
  ``recommend_for_user`` the personalised one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.atnn import ATNN
from repro.core.popularity import PopularityPredictor
from repro.data.dataset import FeatureTable
from repro.data.schema import GROUP_ITEM_PROFILE, GROUP_ITEM_STAT, GROUP_USER
from repro.nn.tensor import no_grad
from repro.obs.context import request_scope
from repro.obs.metrics import get_active_registry
from repro.obs.quality import get_active_monitor
from repro.obs.slo import get_active_slo_tracker
from repro.obs.tracing import maybe_span
from repro.retrieval import MIPSIndex, make_index
from repro.serving.events import Event, event_columns
from repro.serving.feature_store import ItemStatisticsStore

__all__ = ["EngineConfig", "RealTimeEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Serving-loop knobs.

    Attributes
    ----------
    warm_view_threshold:
        Views required before an item switches from the generator path to
        the statistics-aware encoder path.
    batch_size:
        Tower inference chunk size.
    index_kind:
        MIPS index backing ``top_k`` / ``recommend_for_user``:
        ``"bruteforce"`` (exact, the default) or ``"ivf"`` (approximate,
        for million-item catalogues — see ``docs/retrieval.md``).
    ivf_nlist:
        IVF partition count; ``None`` sizes it to ``~sqrt(catalogue)``.
    ivf_nprobe:
        IVF partitions probed per query.
    """

    warm_view_threshold: int = 50
    batch_size: int = 4096
    index_kind: str = "bruteforce"
    ivf_nlist: Optional[int] = None
    ivf_nprobe: int = 8

    def __post_init__(self) -> None:
        if self.warm_view_threshold < 1:
            raise ValueError(
                f"warm_view_threshold must be >= 1, got {self.warm_view_threshold}"
            )
        if self.index_kind not in ("bruteforce", "ivf"):
            raise ValueError(
                "index_kind must be 'bruteforce' or 'ivf', got "
                f"{self.index_kind!r}"
            )
        if self.ivf_nprobe < 1:
            raise ValueError(f"ivf_nprobe must be >= 1, got {self.ivf_nprobe}")


class RealTimeEngine:
    """Streaming popularity service over a new-arrival catalogue.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.atnn.ATNN`.
    catalogue:
        Feature table of the new arrivals being served (profile columns;
        statistic columns, if present, are ignored in favour of the live
        store).
    user_group:
        The active-user group whose mean vector anchors the O(1) scores.
    config:
        Serving knobs.
    """

    def __init__(
        self,
        model: ATNN,
        catalogue: FeatureTable,
        user_group: FeatureTable,
        config: EngineConfig = EngineConfig(),
    ) -> None:
        self.model = model
        self.catalogue = catalogue
        self.config = config
        self.store = ItemStatisticsStore(len(catalogue))
        self.predictor = PopularityPredictor(model, batch_size=config.batch_size)
        self.predictor.fit_user_group(user_group)
        self._scores: Optional[np.ndarray] = None
        self._item_vectors: Optional[np.ndarray] = None
        # Generator-path vectors depend only on the (static) catalogue
        # profiles, so they are computed once and reused by every refresh.
        self._generator_vectors: Optional[np.ndarray] = None
        self._fresh = False
        self._dirty: set = set()
        # Cached top-k order: the best `_order_k` slots from the MIPS
        # index, serving any `k <= _order_k` as a slice.
        self._order: Optional[np.ndarray] = None
        self._order_k = 0
        self._index: Optional[MIPSIndex] = None
        self._events_seen = 0
        self._refreshes = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[Event]) -> int:
        """Apply a batch of behaviour events; scores become stale."""
        with request_scope("ingest") as ctx, maybe_span("engine.ingest"):
            # One columnar pass over the python event objects, shared by
            # the store, the dirty-slot bookkeeping, and the monitor.
            columns = event_columns(events)
            applied = self.store.ingest(events, columns=columns)
            self._events_seen += applied
            if applied:
                self._dirty.update(np.unique(columns[1]).tolist())
            self._fresh = False
            # The cached top-k order is NOT invalidated here: the next
            # refresh drops it only if scores actually changed (events on
            # cold slots leave generator scores — and the order — intact).
            ctx.note("events_applied", applied)
            ctx.note("dirty_slots", len(self._dirty))
            registry = get_active_registry()
            if registry is not None:
                registry.counter("engine.events_ingested").inc(applied)
            monitor = get_active_monitor()
            if monitor is not None:
                # The scores these outcomes were served against are the
                # ones from the last refresh (None before the first
                # refresh, in which case only cohorts/lifecycle update).
                monitor.attach_catalogue(
                    len(self.catalogue), self.config.warm_view_threshold
                )
                monitor.observe_serving_batch(
                    events, scores=self._scores, columns=columns
                )
            return applied

    @property
    def events_seen(self) -> int:
        """Total events ingested."""
        return self._events_seen

    @property
    def last_scores(self) -> Optional[np.ndarray]:
        """Scores from the most recent refresh (None before the first);
        never triggers a refresh, unlike :meth:`scores`."""
        return self._scores

    @property
    def refreshes(self) -> int:
        """How many times popularity has been recomputed."""
        return self._refreshes

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _profile_features(self, slots: np.ndarray) -> Dict[str, np.ndarray]:
        names = self.model.schema.all_column_names(GROUP_ITEM_PROFILE)
        return {name: self.catalogue[name][slots] for name in names}

    def _generator_vectors_for(self, slots: np.ndarray) -> np.ndarray:
        """Generator-path vectors for ``slots`` (profiles + zero stats)."""
        features = self._profile_features(slots)
        for name in self.model.schema.numeric_names(GROUP_ITEM_STAT):
            features[name] = np.zeros(slots.size)
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad(), maybe_span("generator"):
                return self.model.generated_item_vectors(features).data
        finally:
            self.model.train(was_training)

    def _make_index(self, dim: int, dtype) -> MIPSIndex:
        return make_index(
            self.config.index_kind,
            dim,
            dtype=dtype,
            **(
                {
                    "nlist": self.config.ivf_nlist,
                    "nprobe": self.config.ivf_nprobe,
                    "expected_size": len(self.catalogue),
                }
                if self.config.index_kind == "ivf"
                else {}
            ),
        )

    def _popularity_query(self) -> np.ndarray:
        """The MIPS query whose top-k *is* the popularity top-k.

        The scoring head's logit is ``item · (weight ⊙ user) + bias`` and
        the sigmoid is monotone, so ranking by inner product against the
        transformed mean user vector reproduces the score ranking.
        """
        head = self.model.scoring_head
        return head.weight.data * self.predictor.mean_user_vector

    def refresh(self, full: bool = False) -> np.ndarray:
        """Recompute popularity, re-scoring only stale slots when possible.

        Cold slots score through the generator (profiles + mean user
        vector); warm slots additionally run the encoder with their live
        statistics, which the paper's engine uses once behaviour data
        accumulates.

        The first call (and any call with ``full=True``) scores the whole
        catalogue.  Subsequent calls reuse the cached generator vectors —
        profiles are static — and run the encoder only for *stale* slots:
        warm slots that received events since the last refresh (a slot
        crossing the warm threshold is by construction dirty).  Because the
        statistics store standardises columns over all trafficked slots,
        incremental refreshes approximate untouched warm slots with their
        previous vectors; call ``refresh(full=True)`` for an exact pass.
        """
        with request_scope("refresh") as ctx:
            return self._refresh(ctx, full)

    def _refresh(self, ctx, full: bool) -> np.ndarray:
        start = time.perf_counter()
        n = len(self.catalogue)
        full = full or self._generator_vectors is None

        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad(), maybe_span("engine.refresh"):
                warm = self.store.warm_slots(self.config.warm_view_threshold)
                if full:
                    # Statistic columns default to zero (cold) ...
                    self._generator_vectors = self._generator_vectors_for(
                        np.arange(n)
                    )
                    item_vectors = self._generator_vectors.copy()
                    stale = warm
                else:
                    warm_mask = np.zeros(n, dtype=bool)
                    warm_mask[warm] = True
                    stale = np.array(
                        sorted(s for s in self._dirty if warm_mask[s]),
                        dtype=np.int64,
                    )
                    # Copy-on-write: callers hold arrays returned by
                    # earlier scores() calls, which must not change.
                    item_vectors = (
                        self._item_vectors.copy()
                        if stale.size
                        else self._item_vectors
                    )
                if stale.size:
                    # ... and stale warm slots get live statistics +
                    # encoder vectors.
                    with maybe_span("encoder"):
                        warm_features = self._profile_features(stale)
                        warm_features.update(self.store.feature_columns(stale))
                        item_vectors[stale] = self.model.encoded_item_vectors(
                            warm_features
                        ).data
        finally:
            self.model.train(was_training)

        with maybe_span("engine.score"):
            if full:
                self._scores = self.predictor.score_item_vectors(item_vectors)
            elif stale.size:
                scores = self._scores.copy()
                scores[stale] = self.predictor.score_item_vectors(
                    item_vectors[stale]
                )
                self._scores = scores
        # Index maintenance: a full pass rebuilds; a dirty-slot pass
        # updates the touched rows in place (no rebuild, no global
        # re-ranking) and the cached top-k order is dropped only when
        # scores actually changed.
        if full:
            if self._index is None or self._index.dim != item_vectors.shape[1]:
                self._index = self._make_index(
                    item_vectors.shape[1], item_vectors.dtype
                )
            self._index.rebuild(item_vectors)
        elif stale.size:
            self._index.update(stale, item_vectors[stale])
        if full or stale.size:
            self._order = None
            self._order_k = 0
        self._item_vectors = item_vectors
        self._dirty.clear()
        self._fresh = True
        self._refreshes += 1
        ctx.note("full_refresh", bool(full))
        ctx.note("warm_items", int(warm.size))
        ctx.note("slots_rescored", int(stale.size))
        registry = get_active_registry()
        if registry is not None:
            n_warm = int(warm.size)
            registry.counter("engine.refreshes").inc()
            registry.counter("engine.warm_path_items").inc(n_warm)
            registry.counter("engine.cold_path_items").inc(n - n_warm)
            registry.counter("engine.slots_rescored").inc(int(stale.size))
            registry.histogram("engine.refresh_seconds").observe(
                time.perf_counter() - start
            )
        monitor = get_active_monitor()
        if monitor is not None:
            monitor.attach_catalogue(n, self.config.warm_view_threshold)
            monitor.observe_scores(self._scores)
            if stale.size:
                monitor.observe_divergence(
                    stale, self._generator_vectors[stale], item_vectors[stale]
                )
            monitor.evaluate()
        tracker = get_active_slo_tracker()
        if tracker is not None:
            # Quality SLOs ride the monitor snapshot; the explicit
            # evaluate keeps SLO alerting on the refresh cadence even in
            # quiet traffic (below the tracker's auto-evaluate stride).
            if monitor is not None:
                tracker.observe_quality(monitor.snapshot())
            tracker.evaluate()
        return self._scores

    def scores(self) -> np.ndarray:
        """Current popularity scores, refreshing lazily when stale."""
        if self._scores is None or not self._fresh:
            self.refresh()
        return self._scores

    # ------------------------------------------------------------------
    # Downstream applications
    # ------------------------------------------------------------------
    def top_k(self, k: int) -> np.ndarray:
        """The ``k`` most popular catalogue slots, best first.

        Served through the MIPS index (``config.index_kind``): exact with
        the brute-force index, approximate-but-fast with IVF.  The order
        for the largest ``k`` seen since scores last changed is cached,
        so any ``k <= cached_k`` between ingests costs a slice.
        """
        with request_scope("top_k") as ctx:
            scores = self.scores()
            if not 1 <= k <= scores.size:
                raise ValueError(f"k must be in [1, {scores.size}], got {k}")
            hit = self._order is not None and k <= self._order_k
            ctx.note("k", int(k))
            ctx.note("order_cache_hit", hit)
            if not hit:
                with maybe_span("engine.rank"):
                    ids, _ = self._index.search(self._popularity_query(), k)
                    self._order = ids
                    self._order_k = k
            served = self._order[:k]
            ctx.note("served_slots", int(served.size))
            return served

    def top_promotion_candidates(self, k: int) -> np.ndarray:
        """Smart selection: the k most popular catalogue slots."""
        return self.top_k(k)

    @property
    def index(self) -> Optional[MIPSIndex]:
        """The live MIPS index (None before the first refresh)."""
        return self._index

    # ------------------------------------------------------------------
    # Catalogue growth (new-arrival flood)
    # ------------------------------------------------------------------
    def add_arrivals(self, arrivals: FeatureTable) -> np.ndarray:
        """Append brand-new items to the live catalogue; returns their slots.

        The paper's setting is a *constant flood* of new arrivals.  This
        path makes them servable without a catalogue rebuild: profiles are
        appended, the statistics store grows, generator-path vectors are
        encoded for the new slots and **inserted incrementally into the
        MIPS index**, so the items are retrievable by ``top_k`` /
        ``recommend_for_user`` immediately — no full refresh required.

        ``arrivals`` must carry every item-profile column; statistic
        columns are ignored (new items are cold by definition).
        """
        with request_scope("add_arrivals") as ctx:
            n_new = len(arrivals)
            if n_new < 1:
                raise ValueError("add_arrivals needs at least one item")
            profile_names = self.model.schema.all_column_names(
                GROUP_ITEM_PROFILE
            )
            missing = [name for name in profile_names if name not in arrivals]
            if missing:
                raise KeyError(f"missing item profile columns: {missing}")
            start_slot = len(self.catalogue)
            merged = {}
            for name, column in self.catalogue.columns.items():
                extra = (
                    np.asarray(arrivals[name])
                    if name in arrivals
                    else np.zeros(n_new, dtype=column.dtype)
                )
                merged[name] = np.concatenate(
                    [column, extra.astype(column.dtype, copy=False)]
                )
            self.catalogue = FeatureTable(merged)
            self.store.grow(n_new)
            slots = np.arange(start_slot, start_slot + n_new)
            if self._generator_vectors is not None:
                # Live engine: score + index the new slots right away.
                vectors = self._generator_vectors_for(slots)
                self._generator_vectors = np.concatenate(
                    [self._generator_vectors, vectors]
                )
                self._item_vectors = np.concatenate(
                    [self._item_vectors, vectors]
                )
                self._scores = np.concatenate(
                    [
                        self._scores,
                        self.predictor.score_item_vectors(vectors),
                    ]
                )
                assigned = self._index.add(vectors)
                if assigned[0] != start_slot:  # pragma: no cover - invariant
                    raise RuntimeError(
                        "index ids drifted from catalogue slots: "
                        f"{assigned[0]} != {start_slot}"
                    )
                # New items can enter the top-k: the cached order is stale.
                self._order = None
                self._order_k = 0
            ctx.note("items_added", int(n_new))
            ctx.note("catalogue_size", len(self.catalogue))
            registry = get_active_registry()
            if registry is not None:
                registry.counter("engine.items_added").inc(n_new)
            monitor = get_active_monitor()
            if monitor is not None:
                monitor.attach_catalogue(
                    len(self.catalogue), self.config.warm_view_threshold
                )
            return slots

    def recommend_for_user(
        self, user_features: Dict[str, np.ndarray], k: int
    ) -> np.ndarray:
        """Personalised recommendation: top-k slots for one user.

        Parameters
        ----------
        user_features:
            Single-row feature dict for the user (each column length 1).
        k:
            Number of recommendations.
        """
        # No enclosing engine.recommend span: the request scope already
        # times the whole request, and this path runs hot enough that a
        # redundant span shows up in the monitor-overhead bench.
        with request_scope("recommend") as ctx:
            start = time.perf_counter()
            self.scores()  # ensure vectors are fresh
            names = self.model.schema.all_column_names(GROUP_USER)
            missing = [name for name in names if name not in user_features]
            if missing:
                raise KeyError(f"missing user features: {missing}")
            was_training = self.model.training
            self.model.eval()
            try:
                with no_grad(), maybe_span("user_tower"):
                    user_vector = self.model.user_vectors(
                        {
                            name: np.asarray(user_features[name])[:1]
                            for name in names
                        }
                    ).data[0]
            finally:
                self.model.train(was_training)
            head = self.model.scoring_head
            if not 1 <= k <= len(self._index):
                raise ValueError(
                    f"k must be in [1, {len(self._index)}], got {k}"
                )
            ctx.note("k", int(k))
            # Personalised top-k is a MIPS against this user's transformed
            # vector; bias + sigmoid are monotone so ranking by raw inner
            # product is the ranking by probability.
            top, _ = self._index.search(head.weight.data * user_vector, k)
            registry = get_active_registry()
            if registry is not None:
                registry.counter("engine.recommend_requests").inc()
                registry.histogram("engine.recommend_seconds").observe(
                    time.perf_counter() - start
                )
            return top
