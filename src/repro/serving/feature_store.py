"""Streaming item-statistics store.

Accumulates behaviour counters per catalogue slot and materialises the
``item_stat`` feature columns of the Tmall schema on demand, so the item
encoder can score *warm* items with live statistics while brand-new items
fall back to the generator path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.obs.metrics import get_active_registry
from repro.serving.events import Event, EventKind

__all__ = ["ItemCounters", "ItemStatisticsStore"]


@dataclass
class ItemCounters:
    """Raw behaviour counters for one catalogue slot."""

    views: int = 0
    clicks: int = 0
    carts: int = 0
    favorites: int = 0
    purchases: int = 0
    unique_users: set = field(default_factory=set)

    def update(self, event: Event) -> None:
        """Apply one event."""
        if event.kind == EventKind.VIEW:
            self.views += 1
        elif event.kind == EventKind.CLICK:
            self.clicks += 1
        elif event.kind == EventKind.CART:
            self.carts += 1
        elif event.kind == EventKind.FAVORITE:
            self.favorites += 1
        elif event.kind == EventKind.PURCHASE:
            self.purchases += 1
        if event.user_id is not None:
            self.unique_users.add(event.user_id)

    @property
    def ctr(self) -> float:
        """Empirical click-through rate (0 when unseen)."""
        return self.clicks / self.views if self.views else 0.0


class ItemStatisticsStore:
    """Per-slot counters plus schema-compatible statistic columns.

    The store mirrors the eight ``stat_*`` columns of the Tmall schema.
    Columns are standardised with a running mean/std over slots that have
    traffic, so warm-item features live on the same scale the encoder was
    trained on (standardised statistics).
    """

    STAT_COLUMNS = (
        "stat_log_pv",
        "stat_log_uv",
        "stat_hist_ctr",
        "stat_cart_rate",
        "stat_fav_rate",
        "stat_buy_rate",
        "stat_seller_log_pv",
        "stat_category_ctr",
    )

    def __init__(self, n_slots: int) -> None:
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        self.n_slots = n_slots
        self._counters: List[ItemCounters] = [ItemCounters() for _ in range(n_slots)]

    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[Event]) -> int:
        """Apply a batch of events; returns how many were applied."""
        start = time.perf_counter()
        applied = 0
        for event in events:
            if event.item_id >= self.n_slots:
                raise IndexError(
                    f"event references slot {event.item_id}, store has "
                    f"{self.n_slots} slots"
                )
            self._counters[event.item_id].update(event)
            applied += 1
        registry = get_active_registry()
        if registry is not None and applied:
            elapsed = time.perf_counter() - start
            registry.counter("store.events_ingested").inc(applied)
            registry.histogram("store.ingest_seconds").observe(elapsed)
            if elapsed > 0:
                registry.gauge("store.events_per_second").set(applied / elapsed)
        return applied

    def counters(self, slot: int) -> ItemCounters:
        """Raw counters for one slot."""
        return self._counters[slot]

    def views(self) -> np.ndarray:
        """View counts per slot."""
        return np.array([c.views for c in self._counters], dtype=np.int64)

    def warm_slots(self, min_views: int = 20) -> np.ndarray:
        """Slots with enough traffic for statistics-based scoring."""
        if min_views < 1:
            raise ValueError(f"min_views must be >= 1, got {min_views}")
        return np.flatnonzero(self.views() >= min_views)

    # ------------------------------------------------------------------
    def _raw_matrix(self) -> np.ndarray:
        """Raw (pre-standardisation) statistic matrix, one row per slot."""
        rows = np.zeros((self.n_slots, len(self.STAT_COLUMNS)))
        all_ctr = [c.ctr for c in self._counters if c.views]
        category_ctr = float(np.mean(all_ctr)) if all_ctr else 0.0
        for slot, counter in enumerate(self._counters):
            views = max(counter.views, 1)
            rows[slot] = (
                np.log1p(counter.views),
                np.log1p(len(counter.unique_users)),
                counter.ctr,
                counter.carts / views,
                counter.favorites / views,
                counter.purchases / views,
                np.log1p(counter.views),  # seller aggregate proxy
                category_ctr,
            )
        return rows

    def feature_columns(self, slots: Sequence[int]) -> Dict[str, np.ndarray]:
        """Standardised statistic columns for the requested slots.

        Standardisation statistics come from the currently warm slots; a
        store with no traffic yields all-zero columns (the cold-start
        convention of :func:`repro.data.cold_start.zero_statistics`).
        """
        slots = np.asarray(slots)
        raw = self._raw_matrix()
        trafficked = self.views() > 0
        if trafficked.any():
            mean = raw[trafficked].mean(axis=0)
            std = raw[trafficked].std(axis=0)
            std = np.where(std < 1e-12, 1.0, std)
            standardised = (raw - mean) / std
            standardised[~trafficked] = 0.0
        else:
            standardised = np.zeros_like(raw)
        return {
            name: standardised[slots, column]
            for column, name in enumerate(self.STAT_COLUMNS)
        }
