"""Streaming item-statistics store.

Accumulates behaviour counters per catalogue slot and materialises the
``item_stat`` feature columns of the Tmall schema on demand, so the item
encoder can score *warm* items with live statistics while brand-new items
fall back to the generator path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.obs.metrics import get_active_registry
from repro.obs.tracing import maybe_span
from repro.serving.events import (
    KIND_CODES,
    Event,
    EventKind,
    event_columns,
)

__all__ = ["ItemCounters", "ItemStatisticsStore"]

# (slot, user) pairs are packed into one int64 key so unique-visitor
# bookkeeping stays vectorised; user -1 (None) never reaches the key.
_USER_SHIFT = np.int64(32)
_USER_MASK = np.int64((1 << 32) - 1)


@dataclass
class ItemCounters:
    """Raw behaviour counters for one catalogue slot."""

    views: int = 0
    clicks: int = 0
    carts: int = 0
    favorites: int = 0
    purchases: int = 0
    unique_users: set = field(default_factory=set)

    def update(self, event: Event) -> None:
        """Apply one event."""
        if event.kind == EventKind.VIEW:
            self.views += 1
        elif event.kind == EventKind.CLICK:
            self.clicks += 1
        elif event.kind == EventKind.CART:
            self.carts += 1
        elif event.kind == EventKind.FAVORITE:
            self.favorites += 1
        elif event.kind == EventKind.PURCHASE:
            self.purchases += 1
        if event.user_id is not None:
            self.unique_users.add(event.user_id)

    @property
    def ctr(self) -> float:
        """Empirical click-through rate (0 when unseen)."""
        return self.clicks / self.views if self.views else 0.0


class ItemStatisticsStore:
    """Per-slot counters plus schema-compatible statistic columns.

    The store mirrors the eight ``stat_*`` columns of the Tmall schema.
    Columns are standardised with a running mean/std over slots that have
    traffic, so warm-item features live on the same scale the encoder was
    trained on (standardised statistics).
    """

    STAT_COLUMNS = (
        "stat_log_pv",
        "stat_log_uv",
        "stat_hist_ctr",
        "stat_cart_rate",
        "stat_fav_rate",
        "stat_buy_rate",
        "stat_seller_log_pv",
        "stat_category_ctr",
    )

    def __init__(self, n_slots: int) -> None:
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        self.n_slots = n_slots
        # One row per event kind (KIND_CODES order), one column per slot.
        self._counts = np.zeros((len(EventKind.ALL), n_slots), dtype=np.int64)
        self._unique_users = np.zeros(n_slots, dtype=np.int64)
        self._seen_pairs = np.empty(0, dtype=np.int64)  # sorted packed keys

    def grow(self, n_new: int) -> int:
        """Extend the store with ``n_new`` zero-traffic slots.

        Supports the engine's new-arrival path: freshly added catalogue
        slots start cold (all counters zero) and warm up through normal
        ingestion.  Returns the new slot count.
        """
        if n_new < 1:
            raise ValueError(f"n_new must be >= 1, got {n_new}")
        self._counts = np.hstack(
            [self._counts, np.zeros((self._counts.shape[0], n_new), dtype=np.int64)]
        )
        self._unique_users = np.concatenate(
            [self._unique_users, np.zeros(n_new, dtype=np.int64)]
        )
        self.n_slots += n_new
        return self.n_slots

    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[Event], columns=None) -> int:
        """Apply a batch of events; returns how many were applied.

        ``columns`` optionally carries the precomputed
        :func:`~repro.serving.events.event_columns` decomposition so the
        engine's single pass over the python event objects is shared with
        every other columnar consumer (quality monitor, outcome joins).
        """
        with maybe_span("store.ingest"):
            start = time.perf_counter()
            if columns is None:
                columns = event_columns(events)
            kinds, items, users, _ = columns
            applied = int(items.size)
            if applied:
                top_slot = int(items.max())
                if top_slot >= self.n_slots:
                    raise IndexError(
                        f"event references slot {top_slot}, store has "
                        f"{self.n_slots} slots"
                    )
                flat = np.bincount(
                    kinds * self.n_slots + items, minlength=self._counts.size
                )
                self._counts += flat.reshape(self._counts.shape)
                acting = users >= 0
                if acting.any():
                    keys = (items[acting] << _USER_SHIFT) | (users[acting] + 1)
                    fresh = np.unique(keys)
                    if self._seen_pairs.size:
                        fresh = fresh[
                            ~np.isin(fresh, self._seen_pairs, assume_unique=True)
                        ]
                    if fresh.size:
                        self._unique_users += np.bincount(
                            fresh >> _USER_SHIFT, minlength=self.n_slots
                        )
                        self._seen_pairs = np.sort(
                            np.concatenate([self._seen_pairs, fresh])
                        )
            registry = get_active_registry()
            if registry is not None and applied:
                elapsed = time.perf_counter() - start
                registry.counter("store.events_ingested").inc(applied)
                registry.histogram("store.ingest_seconds").observe(elapsed)
                if elapsed > 0:
                    registry.gauge("store.events_per_second").set(
                        applied / elapsed
                    )
            return applied

    def counters(self, slot: int) -> ItemCounters:
        """Raw counters for one slot (materialised read view)."""
        column = self._counts[:, slot]  # IndexError on out-of-range slots
        slot = int(slot) % self.n_slots
        pairs = self._seen_pairs[(self._seen_pairs >> _USER_SHIFT) == slot]
        return ItemCounters(
            views=int(column[KIND_CODES[EventKind.VIEW]]),
            clicks=int(column[KIND_CODES[EventKind.CLICK]]),
            carts=int(column[KIND_CODES[EventKind.CART]]),
            favorites=int(column[KIND_CODES[EventKind.FAVORITE]]),
            purchases=int(column[KIND_CODES[EventKind.PURCHASE]]),
            unique_users={int(key & _USER_MASK) - 1 for key in pairs},
        )

    def views(self) -> np.ndarray:
        """View counts per slot."""
        return self._counts[KIND_CODES[EventKind.VIEW]].copy()

    def warm_slots(self, min_views: int = 20) -> np.ndarray:
        """Slots with enough traffic for statistics-based scoring."""
        if min_views < 1:
            raise ValueError(f"min_views must be >= 1, got {min_views}")
        return np.flatnonzero(self.views() >= min_views)

    # ------------------------------------------------------------------
    def _raw_matrix(self) -> np.ndarray:
        """Raw (pre-standardisation) statistic matrix, one row per slot."""
        views = self._counts[KIND_CODES[EventKind.VIEW]]
        safe_views = np.maximum(views, 1)
        ctr = self._counts[KIND_CODES[EventKind.CLICK]] / safe_views
        trafficked = views > 0
        category_ctr = float(ctr[trafficked].mean()) if trafficked.any() else 0.0
        log_pv = np.log1p(views)
        return np.column_stack(
            (
                log_pv,
                np.log1p(self._unique_users),
                ctr,
                self._counts[KIND_CODES[EventKind.CART]] / safe_views,
                self._counts[KIND_CODES[EventKind.FAVORITE]] / safe_views,
                self._counts[KIND_CODES[EventKind.PURCHASE]] / safe_views,
                log_pv,  # seller aggregate proxy
                np.full(self.n_slots, category_ctr),
            )
        )

    def feature_columns(self, slots: Sequence[int]) -> Dict[str, np.ndarray]:
        """Standardised statistic columns for the requested slots.

        Standardisation statistics come from the currently warm slots; a
        store with no traffic yields all-zero columns (the cold-start
        convention of :func:`repro.data.cold_start.zero_statistics`).
        """
        with maybe_span("store.features"):
            slots = np.asarray(slots)
            raw = self._raw_matrix()
            trafficked = self.views() > 0
            if trafficked.any():
                mean = raw[trafficked].mean(axis=0)
                std = raw[trafficked].std(axis=0)
                std = np.where(std < 1e-12, 1.0, std)
                standardised = (raw - mean) / std
                standardised[~trafficked] = 0.0
            else:
                standardised = np.zeros_like(raw)
            return {
                name: standardised[slots, column]
                for column, name in enumerate(self.STAT_COLUMNS)
            }
