"""Logistic regression CTR baseline (Richardson et al., WWW 2007 lineage).

One learned weight per categorical *id* (a 1-dimensional embedding) plus a
linear term per numeric feature and a global bias — the classic sparse LR
used for ad click prediction, here trained with Adam (an FTRL variant is
available through :class:`repro.nn.optim.FTRL` for the linear weights).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import FlatCTRModel
from repro.data.schema import FeatureSchema
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor

__all__ = ["LogisticRegressionCTR"]


class LogisticRegressionCTR(FlatCTRModel):
    """Sparse logistic regression over ids and numerics."""

    def __init__(
        self,
        schema: FeatureSchema,
        groups: Sequence[str] = ("user", "item_profile", "item_stat"),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(schema, groups)
        rng = rng if rng is not None else np.random.default_rng()
        for feature in self.categorical_features:
            table = Embedding(feature.vocab_size, 1, rng=rng)
            # Near-zero start (LR convention), via the version-tracked channel.
            table.weight.assign_(table.weight.data * 0.01)
            self.register_module(f"w_{feature.name}", table)
        n_numeric = len(self.numeric_names)
        self.numeric_weight = Parameter(
            init.normal(rng, (n_numeric, 1), std=0.01) if n_numeric else np.zeros((0, 1)),
            name="numeric_weight",
        )
        self.bias = Parameter(init.zeros((1,)), name="bias")

    def logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        total: Optional[Tensor] = None
        for feature in self.categorical_features:
            table: Embedding = getattr(self, f"w_{feature.name}")
            contribution = table(features[feature.name]).reshape(-1)
            total = contribution if total is None else total + contribution
        numeric = self._numeric_matrix(features)
        if numeric.shape[1]:
            numeric_term = (Tensor(numeric) @ self.numeric_weight).reshape(-1)
            total = numeric_term if total is None else total + numeric_term
        if total is None:
            raise ValueError("model has no input features")
        return total + self.bias
