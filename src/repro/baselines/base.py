"""Common machinery for the flat CTR baselines.

The paper's related-work section traces CTR prediction from logistic
regression through factorization machines to deep models (Wide & Deep,
DeepFM).  This package implements that lineage on the repo's autograd
engine so Table I can be extended beyond the paper's four rows.

All baselines consume the same feature dict as the towers: categorical
columns (integer ids) and numeric columns, selected by schema groups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.schema import FeatureSchema
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.nn.optim import FTRL, Adam
from repro.nn.tensor import Tensor, get_default_dtype, no_grad

__all__ = ["FlatCTRModel"]


class FlatCTRModel(Module):
    """Base class: a logit model over (categorical ids, numeric values).

    Subclasses implement :meth:`logits`.  Training and batched inference
    are shared.

    Parameters
    ----------
    schema:
        Dataset schema.
    groups:
        Feature groups the model consumes (defaults to all three).
    """

    def __init__(
        self,
        schema: FeatureSchema,
        groups: Sequence[str] = ("user", "item_profile", "item_stat"),
    ) -> None:
        super().__init__()
        self.schema = schema
        self.groups = tuple(groups)
        self.categorical_features = schema.categorical_in(*self.groups)
        self.numeric_names: List[str] = schema.numeric_names(*self.groups)

    # ------------------------------------------------------------------
    def _numeric_matrix(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        dtype = get_default_dtype()
        if not self.numeric_names:
            n = len(next(iter(features.values())))
            return np.zeros((n, 0), dtype=dtype)
        missing = [n for n in self.numeric_names if n not in features]
        if missing:
            raise KeyError(f"missing numeric features: {missing}")
        return np.column_stack(
            [np.asarray(features[name], dtype=dtype) for name in self.numeric_names]
        )

    def logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        raise NotImplementedError

    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        return self.logits(features).sigmoid()

    # ------------------------------------------------------------------
    def fit(
        self,
        train: InteractionDataset,
        epochs: int = 3,
        batch_size: int = 512,
        lr: float = 1e-2,
        label: str = "ctr",
        seed: int = 0,
        optimizer: str = "adam",
        l1: float = 0.0,
        l2: float = 0.0,
    ) -> List[float]:
        """Train on BCE; returns the mean loss per epoch.

        Parameters
        ----------
        optimizer:
            ``"adam"`` (default) or ``"ftrl"`` — the FTRL-Proximal update
            of the paper's related-work lineage, with ``l1``/``l2``
            regularisation (L1 drives exact weight sparsity).
        """
        if optimizer == "adam":
            opt = Adam(self.parameters(), lr=lr)
        elif optimizer == "ftrl":
            opt = FTRL(self.parameters(), lr=lr, l1=l1, l2=l2)
        else:
            raise ValueError(
                f"optimizer must be 'adam' or 'ftrl', got {optimizer!r}"
            )
        rng = np.random.default_rng(seed)
        epoch_losses: List[float] = []
        self.train()
        for _ in range(epochs):
            losses = []
            for batch in train.iter_batches(batch_size, rng=rng):
                opt.zero_grad()
                loss = binary_cross_entropy_with_logits(
                    self.logits(batch.features), batch.label(label)
                )
                loss.backward()
                opt.step()
                losses.append(loss.item())
            epoch_losses.append(float(np.mean(losses)))
        self.eval()
        return epoch_losses

    def predict_proba(
        self, features: Dict[str, np.ndarray], batch_size: int = 4096
    ) -> np.ndarray:
        """Inference-mode click probabilities."""
        was_training = self.training
        self.eval()
        try:
            n_rows = len(next(iter(features.values())))
            chunks = []
            with no_grad():
                for start in range(0, n_rows, batch_size):
                    chunk = {
                        name: col[start : start + batch_size]
                        for name, col in features.items()
                    }
                    chunks.append(self.forward(chunk).data)
            return np.concatenate(chunks)
        finally:
            self.train(was_training)
