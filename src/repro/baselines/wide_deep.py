"""Wide & Deep network (Cheng et al., DLRS 2016).

The wide part is the sparse logistic regression over raw ids and
numerics (memorisation); the deep part embeds every categorical feature
and runs an MLP over the concatenation with the numerics
(generalisation).  The two logits are summed before the sigmoid, and both
parts train jointly, as in the original paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import FlatCTRModel
from repro.baselines.logistic import LogisticRegressionCTR
from repro.data.schema import FeatureSchema
from repro.nn.layers import MLP, FeatureEmbeddings
from repro.nn.tensor import Tensor, concat

__all__ = ["WideAndDeep"]


class WideAndDeep(FlatCTRModel):
    """Jointly trained wide (linear) and deep (embedding MLP) parts.

    Parameters
    ----------
    schema:
        Dataset schema.
    hidden_dims:
        Deep-part MLP widths (a scalar output layer is appended).
    embedding_dim:
        Embedding width used for every categorical feature in the deep
        part (the wide part uses raw ids).
    groups:
        Feature groups consumed.
    rng:
        Generator for initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        hidden_dims: Sequence[int] = (64, 32),
        embedding_dim: int = 8,
        groups: Sequence[str] = ("user", "item_profile", "item_stat"),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(schema, groups)
        rng = rng if rng is not None else np.random.default_rng()
        self.wide = LogisticRegressionCTR(schema, groups, rng=rng)
        vocab = {f.name: f.vocab_size for f in self.categorical_features}
        dims = {f.name: embedding_dim for f in self.categorical_features}
        self.embeddings = FeatureEmbeddings(vocab, dims, rng=rng)
        deep_in = self.embeddings.output_dim + len(self.numeric_names)
        self.deep = MLP(
            deep_in, list(hidden_dims) + [1], output_activation="identity", rng=rng
        )

    def _deep_logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        parts = []
        if self.categorical_features:
            parts.append(self.embeddings(features))
        numeric = self._numeric_matrix(features)
        if numeric.shape[1]:
            parts.append(Tensor(numeric))
        joined = parts[0] if len(parts) == 1 else concat(parts, axis=-1)
        return self.deep(joined).reshape(-1)

    def logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        return self.wide.logits(features) + self._deep_logits(features)
