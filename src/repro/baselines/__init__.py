"""The related-work CTR baseline family (Section II-B of the paper)."""

from repro.baselines.base import FlatCTRModel
from repro.baselines.deepfm import DeepFM
from repro.baselines.fm import FactorizationMachine
from repro.baselines.logistic import LogisticRegressionCTR
from repro.baselines.wide_deep import WideAndDeep

__all__ = [
    "FlatCTRModel",
    "DeepFM",
    "FactorizationMachine",
    "LogisticRegressionCTR",
    "WideAndDeep",
]
