"""DeepFM (Guo et al., IJCAI 2017).

Combines an FM component and a deep MLP that *share the same embedding
vectors*: the FM's factor tables double as the deep part's feature
embeddings, which is DeepFM's distinguishing design over Wide & Deep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import FlatCTRModel
from repro.baselines.fm import FactorizationMachine
from repro.data.schema import FeatureSchema
from repro.nn.layers import MLP
from repro.nn.tensor import Tensor, concat

__all__ = ["DeepFM"]


class DeepFM(FlatCTRModel):
    """FM + deep network over shared factor embeddings.

    Parameters
    ----------
    schema:
        Dataset schema.
    factor_dim:
        Shared embedding/factor width.
    hidden_dims:
        Deep MLP widths (a scalar output layer is appended).
    groups:
        Feature groups consumed.
    rng:
        Generator for initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        factor_dim: int = 8,
        hidden_dims: Sequence[int] = (64, 32),
        groups: Sequence[str] = ("user", "item_profile", "item_stat"),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(schema, groups)
        rng = rng if rng is not None else np.random.default_rng()
        self.fm = FactorizationMachine(schema, factor_dim, groups, rng=rng)
        deep_in = (
            len(self.categorical_features) + len(self.numeric_names)
        ) * factor_dim
        self.deep = MLP(
            deep_in, list(hidden_dims) + [1], output_activation="identity", rng=rng
        )

    def _deep_logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        # The deep input is the concatenation of every field's factor
        # vector — the same vectors the FM interacts, per DeepFM's design.
        fields = self.fm._field_vectors(features)
        joined = concat(fields, axis=-1)
        return self.deep(joined).reshape(-1)

    def logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        return self.fm.logits(features) + self._deep_logits(features)
