"""Factorization Machine (Rendle, ICDM 2010) over fielded features.

Each categorical field contributes the factor vector of its active id;
each numeric field contributes a learned factor vector scaled by the
feature value.  The second-order interaction term uses the standard
``0.5 * ((sum v)^2 - sum v^2)`` identity over the field vectors, so the
cost is linear in the number of fields.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import FlatCTRModel
from repro.baselines.logistic import LogisticRegressionCTR
from repro.data.schema import FeatureSchema
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, stack

__all__ = ["FactorizationMachine"]


class FactorizationMachine(FlatCTRModel):
    """Second-order FM: linear part + pairwise factor interactions.

    Parameters
    ----------
    schema:
        Dataset schema.
    factor_dim:
        Dimension of the factor vectors.
    groups:
        Feature groups consumed.
    rng:
        Generator for initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        factor_dim: int = 8,
        groups: Sequence[str] = ("user", "item_profile", "item_stat"),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(schema, groups)
        if factor_dim <= 0:
            raise ValueError(f"factor_dim must be positive, got {factor_dim}")
        rng = rng if rng is not None else np.random.default_rng()
        self.factor_dim = factor_dim
        self.linear = LogisticRegressionCTR(schema, groups, rng=rng)
        for feature in self.categorical_features:
            table = Embedding(feature.vocab_size, factor_dim, rng=rng)
            # Small factors stabilise early epochs; assign_ keeps the
            # rescale on the engine's version-tracked mutation channel.
            table.weight.assign_(table.weight.data * 0.2)
            self.register_module(f"v_{feature.name}", table)
        n_numeric = len(self.numeric_names)
        self.numeric_factors = Parameter(
            init.normal(rng, (n_numeric, factor_dim), std=0.01)
            if n_numeric
            else np.zeros((0, factor_dim)),
            name="numeric_factors",
        )

    def _field_vectors(self, features: Dict[str, np.ndarray]) -> List[Tensor]:
        """One (batch, factor_dim) tensor per active field."""
        fields: List[Tensor] = []
        for feature in self.categorical_features:
            table: Embedding = getattr(self, f"v_{feature.name}")
            fields.append(table(features[feature.name]))
        numeric = self._numeric_matrix(features)
        for column in range(numeric.shape[1]):
            value = Tensor(numeric[:, column : column + 1])
            fields.append(value * self.numeric_factors[column : column + 1])
        return fields

    def interaction_term(self, features: Dict[str, np.ndarray]) -> Tensor:
        """The ``0.5 * ((sum v)^2 - sum v^2)`` pairwise term, per row."""
        fields = self._field_vectors(features)
        if len(fields) < 2:
            raise ValueError("FM needs at least two fields to interact")
        stacked = stack(fields, axis=0)  # (fields, batch, dim)
        sum_of_vectors = stacked.sum(axis=0)
        square_of_sum = sum_of_vectors * sum_of_vectors
        sum_of_squares = (stacked * stacked).sum(axis=0)
        return 0.5 * (square_of_sum - sum_of_squares).sum(axis=-1)

    def logits(self, features: Dict[str, np.ndarray]) -> Tensor:
        return self.linear.logits(features) + self.interaction_term(features)
