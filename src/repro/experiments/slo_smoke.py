"""SLO smoke run: burn-rate alerting end to end, clean and spiked.

The experiment replays the monitored serving stream twice under a
latency + availability + streaming-AUC SLO set:

* the **clean** phase streams normal traffic and expects quiet alerting
  — error budgets stay unexhausted and no burn-rate rule fires;
* the **spiked** phase injects a sustained latency spike (a slow
  ``inject.latency`` span inside the store-ingest path, visible in the
  flight recorder's span trees) and expects the multi-window burn-rate
  rule on the latency SLO to fire, the error budget to drain, and a
  postmortem bundle to land whose slowest exemplar names the offending
  span.

CI's ``slo-smoke`` job runs this with the smoke preset and asserts both
phases behaved; it is also the acceptance scenario of the observability
test-suite.  Run it manually with::

    atnn-repro slo-smoke --preset smoke
    python -m repro.experiments.slo_smoke --output results/
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.obs.flight import FlightRecorder, use_flight_recorder
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.quality import QualityMonitor, use_monitor
from repro.obs.slo import SLO, SLOTracker, use_slo_tracker
from repro.obs.tracing import Tracer, maybe_span, use_tracer
from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream
from repro.utils.rng import derive_seed

__all__ = ["SLOPhase", "SLOSmokeResult", "run_slo_smoke", "smoke_slos"]


def smoke_slos(
    latency_threshold: float,
    auc_floor: float = 0.5,
) -> List[SLO]:
    """The smoke-run SLO set, sized so a short stream can trip the rules.

    The windows are small (fast 8 / slow 32 events) so the injected
    spike fires within one phase, but the multi-window minimum still
    requires a *sustained* breach — one slow outlier in the fast window
    cannot fire anything while the slow window stays clean.
    """
    return [
        SLO.latency(
            "serving-latency",
            latency_threshold,
            objective=0.9,
            window=32,
            fast_window=8,
            min_events=8,
            burn_alert=2.0,
        ),
        SLO.availability(
            "serving-availability",
            objective=0.99,
            window=32,
            fast_window=8,
            min_events=8,
        ),
        SLO.quality(
            "streaming-auc",
            "quality.streaming_auc",
            floor=auc_floor,
            objective=0.9,
            window=16,
            fast_window=4,
            min_events=4,
        ),
    ]


@dataclass
class SLOPhase:
    """Outcome of one phase (clean or spiked) of the smoke run."""

    name: str
    requests_seen: int
    burn_alerts_fired: List[str] = field(default_factory=list)
    budgets: Dict[str, Optional[float]] = field(default_factory=dict)
    exhausted: List[str] = field(default_factory=list)
    postmortems: List[str] = field(default_factory=list)
    slowest_trace_id: Optional[str] = None
    slowest_hottest_span: Optional[str] = None
    prometheus_text: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests_seen": self.requests_seen,
            "burn_alerts_fired": list(self.burn_alerts_fired),
            "budgets": dict(self.budgets),
            "exhausted": list(self.exhausted),
            "postmortems": list(self.postmortems),
            "slowest_trace_id": self.slowest_trace_id,
            "slowest_hottest_span": self.slowest_hottest_span,
        }


@dataclass
class SLOSmokeResult:
    """Both phases plus the derived pass/fail verdicts."""

    preset: str
    clean: SLOPhase
    spiked: SLOPhase

    @property
    def clean_ok(self) -> bool:
        """Clean stream: budgets intact, burn-rate rules silent."""
        return not self.clean.burn_alerts_fired and not self.clean.exhausted

    @property
    def spike_detected(self) -> bool:
        """Spiked stream: the latency burn-rate rule fired."""
        return any(
            name.startswith("slo-burn:serving-latency")
            for name in self.spiked.burn_alerts_fired
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "preset": self.preset,
            "clean": self.clean.as_dict(),
            "spiked": self.spiked.as_dict(),
            "clean_ok": self.clean_ok,
            "spike_detected": self.spike_detected,
        }

    def render(self) -> str:
        lines = [f"SLO smoke (preset={self.preset})"]
        for phase in (self.clean, self.spiked):
            lines.append(f"  phase {phase.name}: {phase.requests_seen} requests")
            lines.append(
                "    burn alerts fired: "
                + (", ".join(phase.burn_alerts_fired) or "none")
            )
            for name in sorted(phase.budgets):
                value = phase.budgets[name]
                lines.append(
                    f"    budget {name}: "
                    f"{'n/a' if value is None else format(value, '.3f')}"
                )
            if phase.exhausted:
                lines.append(
                    f"    exhausted: {', '.join(phase.exhausted)}"
                )
            if phase.slowest_trace_id is not None:
                lines.append(
                    f"    slowest request: {phase.slowest_trace_id} "
                    f"(hottest span: {phase.slowest_hottest_span})"
                )
            for bundle in phase.postmortems:
                lines.append(f"    postmortem: {bundle}")
        lines.append(f"  clean_ok={self.clean_ok} spike_detected={self.spike_detected}")
        return "\n".join(lines)


def _run_phase(
    name: str,
    artifacts: TmallArtifacts,
    n_batches: int,
    events_per_batch: int,
    latency_threshold: float,
    spike_seconds: float,
    spike_from: Optional[int],
    postmortem_dir: Optional[Path],
    warm_view_threshold: int,
) -> SLOPhase:
    world = artifacts.world
    engine = RealTimeEngine(
        artifacts.model,
        world.new_items,
        world.active_user_group(0.25),
        EngineConfig(warm_view_threshold=warm_view_threshold),
    )
    rng = np.random.default_rng(derive_seed(artifacts.preset.seed, f"slo-{name}"))
    catalogue = np.arange(len(world.new_items))

    registry = MetricsRegistry()
    tracer = Tracer()
    monitor = QualityMonitor(min_outcomes=50)
    tracker = SLOTracker(smoke_slos(latency_threshold), evaluate_every=4)
    recorder = FlightRecorder(
        capacity=128,
        tail_exemplars=8,
        postmortem_dir=postmortem_dir,
        dump_debounce=16,
    )

    original_ingest = engine.store.ingest

    def slow_ingest(events, columns=None):
        # The injected spike lives inside the request scope the engine
        # opens around ingest, so the flight-recorder exemplar's span
        # tree names it as the hottest span.
        with maybe_span("inject.latency"):
            time.sleep(spike_seconds)
        return original_ingest(events, columns=columns)

    with use_registry(registry), use_tracer(tracer), use_monitor(monitor), \
            use_slo_tracker(tracker), use_flight_recorder(recorder):
        for batch in range(n_batches):
            if spike_from is not None and batch >= spike_from:
                engine.store.ingest = slow_ingest
            events = generate_event_stream(
                world, catalogue, n_events=events_per_batch, rng=rng
            )
            engine.ingest(events)
            engine.refresh()
            engine.top_k(min(10, len(catalogue)))
        tracker.evaluate()
    engine.store.ingest = original_ingest

    snapshot = tracker.snapshot()
    slowest = recorder.slowest_requests(1)
    return SLOPhase(
        name=name,
        requests_seen=tracker.requests_seen,
        burn_alerts_fired=[
            alert.rule
            for alert in tracker.alerts.fired
            if alert.rule.startswith("slo-burn:")
        ],
        budgets={
            key: value
            for key, value in snapshot.items()
            if key.endswith(".budget_remaining")
        },
        exhausted=tracker.exhausted(),
        postmortems=[str(path) for path in recorder.dumps],
        slowest_trace_id=slowest[0].trace_id if slowest else None,
        slowest_hottest_span=slowest[0].hottest_span() if slowest else None,
        prometheus_text=registry.to_prometheus_text(),
    )


def run_slo_smoke(
    preset: str = "smoke",
    artifacts: Optional[TmallArtifacts] = None,
    n_batches: int = 12,
    events_per_batch: Optional[int] = None,
    latency_threshold: float = 0.35,
    spike_seconds: Optional[float] = None,
    spike_from: int = 4,
    postmortem_dir: Optional[Path] = None,
    warm_view_threshold: int = 10,
) -> SLOSmokeResult:
    """Run the clean and spiked phases and return both verdicts.

    Parameters
    ----------
    preset:
        Size preset (ignored when ``artifacts`` is given).
    n_batches, events_per_batch:
        Stream shape per phase (defaults scale with the catalogue).
    latency_threshold:
        Latency SLO bound in seconds.  The default is far above any
        smoke-preset ingest/refresh on healthy hardware, so one noisy
        scheduler stall cannot fire the clean phase; the injected spike
        exceeds it on every spiked request.
    spike_seconds:
        Injected delay per ingest once the spike starts (defaults to
        ``2 * latency_threshold``).
    spike_from:
        Batch index at which the spiked phase's delay switches on.
    postmortem_dir:
        Where spiked-phase postmortem bundles land (None: no bundles).
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    if events_per_batch is None:
        events_per_batch = 10 * len(artifacts.world.new_items)
    if spike_seconds is None:
        spike_seconds = 2.0 * latency_threshold

    clean = _run_phase(
        "clean",
        artifacts,
        n_batches=n_batches,
        events_per_batch=events_per_batch,
        latency_threshold=latency_threshold,
        spike_seconds=0.0,
        spike_from=None,
        postmortem_dir=None,
        warm_view_threshold=warm_view_threshold,
    )
    spiked = _run_phase(
        "spiked",
        artifacts,
        n_batches=n_batches,
        events_per_batch=events_per_batch,
        latency_threshold=latency_threshold,
        spike_seconds=spike_seconds,
        spike_from=spike_from,
        postmortem_dir=postmortem_dir,
        warm_view_threshold=warm_view_threshold,
    )
    return SLOSmokeResult(preset=artifacts.preset.name, clean=clean, spiked=spiked)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.experiments.slo_smoke``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.slo_smoke",
        description="Run the SLO burn-rate smoke check (clean + spiked).",
    )
    parser.add_argument("--preset", default="smoke")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for the JSON verdict and postmortem bundles",
    )
    args = parser.parse_args(argv)
    postmortem_dir = args.output / "postmortems" if args.output else None
    result = run_slo_smoke(preset=args.preset, postmortem_dir=postmortem_dir)
    print(result.render())
    if args.output is not None:
        from repro.utils.serialization import save_json

        save_json(result.as_dict(), args.output / "slo_smoke.json")
    return 0 if (result.clean_ok and result.spike_detected) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
