"""Transfer experiment: ATNN on the movie-recommendation scenario.

The paper's future work claims the adversarial-generator strategy
transfers to other cold-start recommendation domains, naming movie
recommendation.  Because every model in this repository is schema-generic,
the *identical* ATNN/trainer code runs on the movie world unchanged; this
experiment repeats the Table I protocol there (TNN-DCN and ATNN, complete
features vs statistics-missing) and additionally checks that the O(1)
popularity service ranks unreleased titles sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    ATNN,
    ATNNTrainer,
    PopularityPredictor,
    TowerConfig,
    TwoTowerModel,
    TwoTowerTrainer,
)
from repro.data import train_test_split, zero_statistics
from repro.data.synthetic.movies import MovieConfig, MovieWorld, generate_movie_world
from repro.experiments.configs import get_preset
from repro.experiments.table1 import Table1Result, Table1Row
from repro.metrics import rank_correlation, roc_auc
from repro.utils.rng import derive_seed

__all__ = ["TransferResult", "run_transfer"]


@dataclass
class TransferResult:
    """Cold-start table on the movie world plus popularity diagnostics."""

    table: Table1Result
    popularity_rank_corr: float
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "table": self.table.as_dict(),
            "popularity_rank_corr": self.popularity_rank_corr,
        }

    def render(self) -> str:
        """ASCII report."""
        return self.table.render() + (
            f"\nO(1) popularity vs ground truth (unreleased titles), "
            f"Spearman: {self.popularity_rank_corr:.4f}"
        )


def run_transfer(
    preset: str = "default",
    world: Optional[MovieWorld] = None,
) -> TransferResult:
    """Run the Table I protocol on the movie world.

    Parameters
    ----------
    preset:
        Supplies tower dimensions and training budget; the movie world has
        its own (fixed) size.
    world:
        Optional pre-generated movie world.
    """
    config = get_preset(preset)
    if world is None:
        movie_config = MovieConfig()
        if preset == "smoke":
            movie_config = MovieConfig(
                n_users=600, n_movies=800, n_new_movies=250, n_interactions=18_000
            )
        world = generate_movie_world(movie_config)

    rng = np.random.default_rng(derive_seed(config.seed, "transfer-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)
    cold = zero_statistics(test.schema, test.features)

    # TNN-DCN baseline: production model with statistics zeroed at serving.
    baseline = TwoTowerModel(
        world.schema,
        config.tower,
        rng=np.random.default_rng(derive_seed(config.seed, "transfer-dcn")),
    )
    TwoTowerTrainer(
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        seed=derive_seed(config.seed, "transfer-dcn-train"),
    ).fit(baseline, train)
    baseline_row = Table1Row(
        "TNN-DCN",
        roc_auc(test.label("ctr"), baseline.predict_proba(cold)),
        roc_auc(test.label("ctr"), baseline.predict_proba(test.features)),
    )

    # ATNN: the same model code as the e-commerce experiments.
    model = ATNN(
        world.schema,
        config.tower,
        rng=np.random.default_rng(derive_seed(config.seed, "transfer-atnn")),
    )
    ATNNTrainer(
        lambda_similarity=config.lambda_similarity,
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        seed=derive_seed(config.seed, "transfer-atnn-train"),
    ).fit(model, train)
    atnn_row = Table1Row(
        "ATNN",
        roc_auc(test.label("ctr"), model.predict_proba_cold_start(test.features)),
        roc_auc(test.label("ctr"), model.predict_proba(test.features)),
    )

    predictor = PopularityPredictor(model)
    predictor.fit_user_group(world.active_user_group(0.25))
    scores = predictor.score_items(world.new_movies)
    corr = rank_correlation(scores, world.new_movie_popularity)

    table = Table1Result(
        rows=[baseline_row, atnn_row],
        preset=preset,
        title="Transfer scenario — movie recommendation cold start",
    )
    return TransferResult(table=table, popularity_rank_corr=corr, preset=preset)
