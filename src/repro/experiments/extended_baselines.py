"""Extended Table I: the full related-work CTR family under cold start.

The paper's Table I compares four models; its related-work section
discusses the wider CTR lineage (LR, FM, Wide & Deep, DeepFM).  This
extension experiment evaluates that whole family in the same two regimes
(complete features vs statistics-missing) alongside ATNN, using the same
world, split and protocol as :func:`repro.experiments.table1.run_table1`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines import (
    DeepFM,
    FactorizationMachine,
    LogisticRegressionCTR,
    WideAndDeep,
)
from repro.data import train_test_split, zero_statistics
from repro.data.synthetic import TmallWorld, generate_tmall_world
from repro.experiments.configs import get_preset
from repro.experiments.table1 import Table1Result, Table1Row, _atnn_aucs
from repro.metrics import roc_auc
from repro.utils.rng import derive_seed

__all__ = ["run_extended_baselines"]


def _flat_model_factory(name: str, schema, rng):
    """Instantiate one flat baseline by name."""
    if name == "LR":
        return LogisticRegressionCTR(schema, rng=rng)
    if name == "FM":
        return FactorizationMachine(schema, factor_dim=8, rng=rng)
    if name == "Wide&Deep":
        return WideAndDeep(schema, rng=rng)
    if name == "DeepFM":
        return DeepFM(schema, factor_dim=8, rng=rng)
    raise ValueError(f"unknown baseline {name!r}")


def run_extended_baselines(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
    models: Optional[List[str]] = None,
    include_atnn: bool = True,
) -> Table1Result:
    """Run the extended cold-start comparison.

    Parameters
    ----------
    preset:
        Size preset name.
    world:
        Optional pre-generated world to reuse.
    models:
        Subset of {"LR", "FM", "Wide&Deep", "DeepFM"}.
    include_atnn:
        Append the ATNN row for reference.

    Returns
    -------
    Table1Result
        Rows in lineage order (LR → FM → Wide&Deep → DeepFM → ATNN).
    """
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rng = np.random.default_rng(derive_seed(config.seed, "table1-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)

    wanted = models if models is not None else ["LR", "FM", "Wide&Deep", "DeepFM"]
    rows: List[Table1Row] = []
    cold_features = zero_statistics(test.schema, test.features)
    for name in wanted:
        model = _flat_model_factory(
            name, world.schema, np.random.default_rng(derive_seed(config.seed, name))
        )
        model.fit(
            train,
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=5e-3,
            seed=derive_seed(config.seed, f"{name}-train"),
        )
        complete = roc_auc(test.label("ctr"), model.predict_proba(test.features))
        profile_only = roc_auc(
            test.label("ctr"), model.predict_proba(cold_features)
        )
        rows.append(Table1Row(name, profile_only, complete))

    if include_atnn:
        rows.append(_atnn_aucs(train, test, config, config.seed))
    return Table1Result(
        rows=rows,
        preset=preset,
        title="Extended cold-start comparison — related-work CTR family",
    )
