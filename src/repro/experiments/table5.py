"""Table V — online food-delivery experiment: ATNN vs human experts.

Both policies recruit the same number of new restaurants from the
applicant pool; the platform then observes each recruit's realised 30-day
VpPV and GMV.  The expert scores applicants on salient profile features;
ATNN ranks them by its cold-start predictions (a rank blend of the two
task heads, mirroring the paper's goal of balancing VpPV and GMV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import ExpertConfig, ExpertSelector, select_top_k
from repro.data.schema import GROUP_ITEM_PROFILE, GROUP_USER
from repro.data.synthetic import ElemeWorld, generate_eleme_world
from repro.experiments.configs import get_preset
from repro.experiments.pipeline import ElemeArtifacts, build_eleme_artifacts
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["Table5Result", "run_table5", "PAPER_TABLE5"]

PAPER_TABLE5 = {
    "expert": {"vppv": 0.2656, "gmv": 191.23},
    "atnn": {"vppv": 0.2872, "gmv": 219.33},
    "improvement": {"vppv": 0.081, "gmv": 0.147},
}


@dataclass
class Table5Result:
    """Realised per-policy VpPV and GMV of recruited restaurants."""

    expert_vppv: float
    expert_gmv: float
    atnn_vppv: float
    atnn_gmv: float
    n_selected: int
    preset: str

    @property
    def vppv_improvement(self) -> float:
        """Relative realised-VpPV gain of ATNN recruitment."""
        return (self.atnn_vppv - self.expert_vppv) / self.expert_vppv

    @property
    def gmv_improvement(self) -> float:
        """Relative realised-GMV gain of ATNN recruitment."""
        return (self.atnn_gmv - self.expert_gmv) / self.expert_gmv

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "expert_vppv": self.expert_vppv,
            "expert_gmv": self.expert_gmv,
            "atnn_vppv": self.atnn_vppv,
            "atnn_gmv": self.atnn_gmv,
            "vppv_improvement": self.vppv_improvement,
            "gmv_improvement": self.gmv_improvement,
            "n_selected": self.n_selected,
        }

    def render(self) -> str:
        """ASCII table in the paper's Table V layout."""
        body = [
            ["Human Experts", self.expert_vppv, self.expert_gmv],
            ["ATNN", self.atnn_vppv, self.atnn_gmv],
            [
                "Improvement %",
                100.0 * self.vppv_improvement,
                100.0 * self.gmv_improvement,
            ],
        ]
        return format_table(
            ["Source", "VpPV", "GMV"],
            body,
            precision=4,
            title=(
                f"Table V — food delivery online recruitment "
                f"(n={self.n_selected} per arm, preset={self.preset})"
            ),
        )


def _cold_start_features(world: ElemeWorld) -> Dict[str, np.ndarray]:
    """Feature rows pairing each new applicant with its own zone's group."""
    zones = world.new_restaurant_zone
    features: Dict[str, np.ndarray] = {}
    for name in world.schema.all_column_names(GROUP_USER):
        features[name] = world.user_groups[name][zones]
    for name in world.schema.all_column_names(GROUP_ITEM_PROFILE):
        features[name] = world.new_restaurants[name]
    for name in world.schema.numeric_names("item_stat"):
        features[name] = np.zeros(len(world.new_restaurants))
    return features


def _rank_blend(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Average of the two score vectors' rank positions (higher = better)."""
    def ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values)
        out = np.empty_like(order, dtype=np.float64)
        out[order] = np.arange(values.size)
        return out

    return 0.5 * (ranks(a) + ranks(b))


def run_table5(
    preset: str = "default",
    world: Optional[ElemeWorld] = None,
    artifacts: Optional[ElemeArtifacts] = None,
    selection_fraction: float = 0.2,
    expert: Optional[ExpertConfig] = None,
) -> Table5Result:
    """Reproduce Table V.

    Parameters
    ----------
    preset:
        Size preset name.
    world:
        Optional pre-generated world (shared with Table IV).
    artifacts:
        Optional pre-trained multi-task ATNN stack.
    selection_fraction:
        Fraction of the applicant pool each policy recruits.
    expert:
        Expert-simulator knobs.
    """
    config = get_preset(preset)
    if world is None:
        world = generate_eleme_world(config.eleme)
    if artifacts is None:
        artifacts = build_eleme_artifacts(preset, world=world, adversarial=True)

    pool_size = len(world.new_restaurants)
    k = max(1, int(round(pool_size * selection_fraction)))

    expert_rng = np.random.default_rng(derive_seed(config.seed, "table5-expert"))
    # The paper motivates this scenario with reviewers who cannot examine
    # the flood of COVID-era applications carefully; the expert therefore
    # carries more judgement noise than the e-commerce curator of Table III.
    expert_config = expert if expert is not None else ExpertConfig(
        feature_weights={
            "rest_photo_quality": 1.0,
            "rest_menu_breadth": 0.4,
            "rest_avg_price": -0.2,
        },
        judgement_noise=1.6,
    )
    expert_scores = ExpertSelector(expert_config).score(
        world.new_restaurants,
        expert_rng,
        insight=world.new_restaurant_attractiveness,
    )
    expert_picks = select_top_k(expert_scores, k)

    features = _cold_start_features(world)
    predicted_vppv = artifacts.model.predict(features, "vppv", cold_start=True)
    predicted_gmv = artifacts.model.predict(features, "gmv", cold_start=True)
    model_picks = select_top_k(_rank_blend(predicted_vppv, predicted_gmv), k)

    outcome_rng = np.random.default_rng(derive_seed(config.seed, "table5-outcomes"))
    expert_vppv, expert_gmv = world.realized_outcomes(expert_picks, outcome_rng)
    atnn_vppv, atnn_gmv = world.realized_outcomes(model_picks, outcome_rng)

    return Table5Result(
        expert_vppv=float(expert_vppv.mean()),
        expert_gmv=float(expert_gmv.mean()),
        atnn_vppv=float(atnn_vppv.mean()),
        atnn_gmv=float(atnn_gmv.mean()),
        n_selected=k,
        preset=preset,
    )
