"""Popularity-scoring complexity experiment (the paper's O(1) claim).

Section III-D argues that scoring a new arrival against a stored mean user
vector costs O(1) per item, versus O(N_U) for the exact pairwise mean over
the user group.  This experiment measures the per-item scoring cost of
both strategies as the user-group size grows, and the rank agreement
between the two orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.synthetic.common import sigmoid
from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.metrics import rank_correlation
from repro.utils.tabulate import format_table
from repro.utils.timer import time_callable

__all__ = ["ComplexityRow", "ComplexityResult", "run_complexity"]


@dataclass
class ComplexityRow:
    """Timing at one user-group size."""

    n_users: int
    mean_vector_seconds_per_item: float
    pairwise_seconds_per_item: float

    @property
    def speedup(self) -> float:
        """How many times faster the mean-vector path is."""
        if self.mean_vector_seconds_per_item <= 0:
            return float("inf")
        return self.pairwise_seconds_per_item / self.mean_vector_seconds_per_item


@dataclass
class ComplexityResult:
    """Sweep results plus rank agreement of the two orderings."""

    rows: List[ComplexityRow]
    rank_agreement: float
    n_items: int
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "rank_agreement": self.rank_agreement,
            "n_items": self.n_items,
            "rows": [
                {
                    "n_users": row.n_users,
                    "mean_vector_seconds_per_item": row.mean_vector_seconds_per_item,
                    "pairwise_seconds_per_item": row.pairwise_seconds_per_item,
                    "speedup": row.speedup,
                }
                for row in self.rows
            ],
        }

    def render(self) -> str:
        """ASCII report of the complexity sweep."""
        body = [
            [
                row.n_users,
                row.mean_vector_seconds_per_item * 1e6,
                row.pairwise_seconds_per_item * 1e6,
                row.speedup,
            ]
            for row in self.rows
        ]
        table = format_table(
            [
                "Users in group",
                "Mean-vector us/item",
                "Pairwise us/item",
                "Speedup x",
            ],
            body,
            precision=2,
            title=(
                f"Popularity scoring cost vs user-group size "
                f"(n_items={self.n_items}, preset={self.preset})"
            ),
        )
        return table + (
            f"\nSpearman rank agreement (mean-vector vs exact pairwise): "
            f"{self.rank_agreement:.4f}"
        )


def _mean_vector_scores(
    item_vectors: np.ndarray, mean_user: np.ndarray, weight: np.ndarray, bias: float
) -> np.ndarray:
    """The O(1)-per-item serving kernel."""
    return sigmoid(item_vectors @ (weight * mean_user) + bias)


def _pairwise_scores(
    item_vectors: np.ndarray, user_vectors: np.ndarray, weight: np.ndarray, bias: float
) -> np.ndarray:
    """The O(N_U)-per-item exact mean of pairwise scores."""
    logits = (item_vectors * weight) @ user_vectors.T + bias
    return sigmoid(logits).mean(axis=1)


def run_complexity(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    user_counts: Sequence[int] = (250, 500, 1000, 2000),
    repeats: int = 3,
) -> ComplexityResult:
    """Measure per-item popularity-scoring cost vs user-group size.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack with ``keep_individual_users=True``.
    user_counts:
        User-group sizes to sweep (capped at the world's user count).
    repeats:
        Timing repetitions (the minimum is reported).
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset, keep_individual_users=True)
    predictor = artifacts.predictor

    item_vectors = predictor._encode_items(artifacts.world.new_items)
    # Sweep over the full user population so the O(N_U) trend is visible
    # beyond the fitted user group's size.
    user_vectors = predictor._encode_users(artifacts.world.users)
    weight = artifacts.model.scoring_head.weight.data
    bias = float(artifacts.model.scoring_head.bias.data[0])
    n_items = item_vectors.shape[0]

    rows: List[ComplexityRow] = []
    seen_counts = set()
    for count in user_counts:
        count = min(count, user_vectors.shape[0])
        if count in seen_counts:
            continue
        seen_counts.add(count)
        subset = user_vectors[:count]
        mean_user = subset.mean(axis=0)
        mean_time = time_callable(
            lambda: _mean_vector_scores(item_vectors, mean_user, weight, bias),
            repeats=repeats,
        )
        pair_time = time_callable(
            lambda: _pairwise_scores(item_vectors, subset, weight, bias),
            repeats=repeats,
        )
        rows.append(
            ComplexityRow(
                n_users=count,
                mean_vector_seconds_per_item=mean_time / n_items,
                pairwise_seconds_per_item=pair_time / n_items,
            )
        )

    full_mean = _mean_vector_scores(
        item_vectors, user_vectors.mean(axis=0), weight, bias
    )
    full_pairwise = _pairwise_scores(item_vectors, user_vectors, weight, bias)
    agreement = rank_correlation(full_mean, full_pairwise)
    return ComplexityResult(
        rows=rows,
        rank_agreement=agreement,
        n_items=n_items,
        preset=artifacts.preset.name,
    )
