"""Serving warm-up experiment (Section IV-D deployment behaviour).

The deployed engine starts by scoring every new arrival through the
generator (profiles only) and switches items to the statistics-aware
encoder once behaviour accumulates.  This experiment streams behaviour
events in stages and measures, after each stage, the Spearman correlation
between the engine's scores and ground-truth popularity — quantifying how
much live statistics sharpen the cold-start ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.metrics import rank_correlation
from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["ServingStage", "ServingEvalResult", "run_serving_eval"]


@dataclass
class ServingStage:
    """Engine quality after one ingestion stage."""

    events_total: int
    warm_items: int
    rank_corr_vs_truth: float


@dataclass
class ServingEvalResult:
    """Warm-up trajectory of the real-time engine."""

    stages: List[ServingStage]
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "stages": [
                {
                    "events_total": stage.events_total,
                    "warm_items": stage.warm_items,
                    "rank_corr_vs_truth": stage.rank_corr_vs_truth,
                }
                for stage in self.stages
            ]
        }

    def render(self) -> str:
        """ASCII report of the warm-up trajectory."""
        return format_table(
            ["Events ingested", "Warm items", "Rank corr vs true popularity"],
            [
                [stage.events_total, stage.warm_items, stage.rank_corr_vs_truth]
                for stage in self.stages
            ],
            precision=4,
            title=f"Serving warm-up (preset={self.preset})",
        )

    @property
    def cold_quality(self) -> float:
        """Ranking quality before any events."""
        return self.stages[0].rank_corr_vs_truth

    @property
    def warm_quality(self) -> float:
        """Ranking quality after the final stage."""
        return self.stages[-1].rank_corr_vs_truth


def run_serving_eval(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    event_batches: Optional[Sequence[int]] = None,
    warm_view_threshold: int = 30,
) -> ServingEvalResult:
    """Measure engine ranking quality across ingestion stages.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack.
    event_batches:
        View-event counts ingested *before* each measurement; the first
        entry is typically 0 (the all-cold state).  Defaults scale with
        the catalogue size so mid-stage batches actually warm items.
    warm_view_threshold:
        Views needed before an item switches to the encoder path.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world = artifacts.world
    seed = artifacts.preset.seed
    if event_batches is None:
        n = len(world.new_items)
        event_batches = (0, 20 * n, 60 * n)

    engine = RealTimeEngine(
        artifacts.model,
        world.new_items,
        world.active_user_group(0.25),
        EngineConfig(warm_view_threshold=warm_view_threshold),
    )
    rng = np.random.default_rng(derive_seed(seed, "serving-eval"))
    catalogue = np.arange(len(world.new_items))

    stages: List[ServingStage] = []
    for batch_size in event_batches:
        if batch_size > 0:
            events = generate_event_stream(
                world, catalogue, n_events=batch_size, rng=rng
            )
            engine.ingest(events)
        scores = engine.refresh()
        stages.append(
            ServingStage(
                events_total=engine.events_seen,
                warm_items=int(
                    engine.store.warm_slots(warm_view_threshold).size
                ),
                rank_corr_vs_truth=rank_correlation(
                    scores, world.new_item_popularity
                ),
            )
        )
    return ServingEvalResult(stages=stages, preset=artifacts.preset.name)
