"""Serving warm-up experiment (Section IV-D deployment behaviour).

The deployed engine starts by scoring every new arrival through the
generator (profiles only) and switches items to the statistics-aware
encoder once behaviour accumulates.  This experiment streams behaviour
events in stages and measures, after each stage, the Spearman correlation
between the engine's scores and ground-truth popularity — quantifying how
much live statistics sharpen the cold-start ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.metrics import rank_correlation
from repro.metrics.auc import roc_auc
from repro.obs.quality import QualityMonitor, get_active_monitor, use_monitor
from repro.obs.slo import get_active_slo_tracker
from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream
from repro.serving.events import join_click_outcomes
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = [
    "ServingStage",
    "ServingEvalResult",
    "MonitoredServingResult",
    "run_serving_eval",
    "run_monitored_serving",
]


@dataclass
class ServingStage:
    """Engine quality after one ingestion stage."""

    events_total: int
    warm_items: int
    rank_corr_vs_truth: float


@dataclass
class ServingEvalResult:
    """Warm-up trajectory of the real-time engine."""

    stages: List[ServingStage]
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "stages": [
                {
                    "events_total": stage.events_total,
                    "warm_items": stage.warm_items,
                    "rank_corr_vs_truth": stage.rank_corr_vs_truth,
                }
                for stage in self.stages
            ]
        }

    def render(self) -> str:
        """ASCII report of the warm-up trajectory."""
        return format_table(
            ["Events ingested", "Warm items", "Rank corr vs true popularity"],
            [
                [stage.events_total, stage.warm_items, stage.rank_corr_vs_truth]
                for stage in self.stages
            ],
            precision=4,
            title=f"Serving warm-up (preset={self.preset})",
        )

    @property
    def cold_quality(self) -> float:
        """Ranking quality before any events."""
        return self.stages[0].rank_corr_vs_truth

    @property
    def warm_quality(self) -> float:
        """Ranking quality after the final stage."""
        return self.stages[-1].rank_corr_vs_truth


def run_serving_eval(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    event_batches: Optional[Sequence[int]] = None,
    warm_view_threshold: int = 30,
) -> ServingEvalResult:
    """Measure engine ranking quality across ingestion stages.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack.
    event_batches:
        View-event counts ingested *before* each measurement; the first
        entry is typically 0 (the all-cold state).  Defaults scale with
        the catalogue size so mid-stage batches actually warm items.
    warm_view_threshold:
        Views needed before an item switches to the encoder path.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world = artifacts.world
    seed = artifacts.preset.seed
    if event_batches is None:
        n = len(world.new_items)
        event_batches = (0, 20 * n, 60 * n)

    engine = RealTimeEngine(
        artifacts.model,
        world.new_items,
        world.active_user_group(0.25),
        EngineConfig(warm_view_threshold=warm_view_threshold),
    )
    rng = np.random.default_rng(derive_seed(seed, "serving-eval"))
    catalogue = np.arange(len(world.new_items))

    stages: List[ServingStage] = []
    for batch_size in event_batches:
        if batch_size > 0:
            events = generate_event_stream(
                world, catalogue, n_events=batch_size, rng=rng
            )
            engine.ingest(events)
        scores = engine.refresh()
        stages.append(
            ServingStage(
                events_total=engine.events_seen,
                warm_items=int(
                    engine.store.warm_slots(warm_view_threshold).size
                ),
                rank_corr_vs_truth=rank_correlation(
                    scores, world.new_item_popularity
                ),
            )
        )
    return ServingEvalResult(stages=stages, preset=artifacts.preset.name)


@dataclass
class MonitoredServingResult:
    """Monitored serving run: warm-up trajectory plus quality telemetry.

    ``exact_auc`` is the ground-truth check computed offline over every
    scored impression (outcomes joined against the scores that served
    them), and ``streaming_auc`` is the monitor's histogram estimate of
    the same quantity — the two should agree to well within 0.01.
    """

    stages: List[ServingStage]
    preset: str
    quality: Dict[str, Optional[float]] = field(default_factory=dict)
    cold_start: Dict[str, object] = field(default_factory=dict)
    alerts: List[Dict[str, object]] = field(default_factory=list)
    exact_auc: Optional[float] = None
    streaming_auc: Optional[float] = None
    slo: Dict[str, Optional[float]] = field(default_factory=dict)
    slo_exhausted: List[str] = field(default_factory=list)

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "stages": [
                {
                    "events_total": stage.events_total,
                    "warm_items": stage.warm_items,
                    "rank_corr_vs_truth": stage.rank_corr_vs_truth,
                }
                for stage in self.stages
            ],
            "quality": dict(self.quality),
            "cold_start": dict(self.cold_start),
            "alerts": list(self.alerts),
            "exact_auc": self.exact_auc,
            "streaming_auc": self.streaming_auc,
            "slo": dict(self.slo),
            "slo_exhausted": list(self.slo_exhausted),
        }

    def render(self) -> str:
        """ASCII report: warm-up table plus the quality snapshot."""
        table = format_table(
            ["Events ingested", "Warm items", "Rank corr vs true popularity"],
            [
                [stage.events_total, stage.warm_items, stage.rank_corr_vs_truth]
                for stage in self.stages
            ],
            precision=4,
            title=f"Monitored serving (preset={self.preset})",
        )
        lines = [table, "", "quality snapshot:"]
        for name, value in sorted(self.quality.items()):
            rendered = "n/a" if value is None else f"{value:.6g}"
            lines.append(f"  {name} = {rendered}")
        if self.exact_auc is not None and self.streaming_auc is not None:
            lines.append(
                f"  auc check: exact={self.exact_auc:.6f} "
                f"streaming={self.streaming_auc:.6f} "
                f"gap={abs(self.exact_auc - self.streaming_auc):.6f}"
            )
        fired = [a for a in self.alerts if a.get("kind") == "fired"]
        lines.append(f"  alerts fired: {len(fired)}")
        for alert in fired:
            lines.append(
                f"    {alert['rule']} ({alert['severity']}): "
                f"{alert['metric']}={alert['value']:.6g}"
            )
        budgets = sorted(
            name for name in self.slo if name.endswith(".budget_remaining")
        )
        if budgets:
            lines.append("  slo budgets:")
            for name in budgets:
                value = self.slo[name]
                rendered = "n/a" if value is None else f"{value:.3f}"
                lines.append(f"    {name} = {rendered}")
        if self.slo_exhausted:
            lines.append(
                f"  exhausted budgets: {', '.join(self.slo_exhausted)}"
            )
        return "\n".join(lines)


def run_monitored_serving(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    event_batches: Optional[Sequence[int]] = None,
    warm_view_threshold: int = 30,
    monitor: Optional[QualityMonitor] = None,
) -> MonitoredServingResult:
    """The serving warm-up loop with the quality monitor armed.

    Uses the active monitor when one is in scope (e.g. the CLI's
    ``--monitor`` telemetry session); otherwise builds and activates a
    default :class:`~repro.obs.quality.QualityMonitor` for the run.
    Alongside the monitor's streaming estimates, the run accumulates
    every (outcome, served score) pair and computes the **exact** AUC
    offline, so reports carry both numbers and their gap.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world = artifacts.world
    seed = artifacts.preset.seed
    if event_batches is None:
        n = len(world.new_items)
        event_batches = (0, 20 * n, 60 * n)

    if monitor is None:
        monitor = get_active_monitor() or QualityMonitor()

    engine = RealTimeEngine(
        artifacts.model,
        world.new_items,
        world.active_user_group(0.25),
        EngineConfig(warm_view_threshold=warm_view_threshold),
    )
    rng = np.random.default_rng(derive_seed(seed, "serving-monitor"))
    catalogue = np.arange(len(world.new_items))

    stages: List[ServingStage] = []
    exact_labels: List[np.ndarray] = []
    exact_scores: List[np.ndarray] = []
    with use_monitor(monitor):
        for batch_size in event_batches:
            if batch_size > 0:
                events = generate_event_stream(
                    world, catalogue, n_events=batch_size, rng=rng
                )
                served = engine.last_scores
                if served is not None:
                    items, _, _, clicked = join_click_outcomes(events)
                    if items.size:
                        exact_labels.append(clicked.astype(float))
                        exact_scores.append(
                            np.clip(served[items], 0.0, 1.0)
                        )
                engine.ingest(events)
            engine.refresh()
            stages.append(
                ServingStage(
                    events_total=engine.events_seen,
                    warm_items=int(
                        engine.store.warm_slots(warm_view_threshold).size
                    ),
                    rank_corr_vs_truth=rank_correlation(
                        engine.last_scores, world.new_item_popularity
                    ),
                )
            )

    snapshot = monitor.snapshot()
    exact_auc: Optional[float] = None
    if exact_labels:
        labels = np.concatenate(exact_labels)
        scores = np.concatenate(exact_scores)
        if 0.0 < labels.mean() < 1.0:
            exact_auc = roc_auc(labels, scores)
    # Riding SLO tracker (e.g. the CLI's --slo session): the engine has
    # already fed it through the request observers; report its state.
    tracker = get_active_slo_tracker()
    slo_snapshot: Dict[str, Optional[float]] = {}
    slo_exhausted: List[str] = []
    if tracker is not None:
        tracker.evaluate()
        slo_snapshot = tracker.snapshot()
        slo_exhausted = tracker.exhausted()
    return MonitoredServingResult(
        stages=stages,
        preset=artifacts.preset.name,
        quality=snapshot,
        cold_start=(
            monitor.cold_start.summary() if monitor.cold_start is not None else {}
        ),
        alerts=[dict(record) for record in monitor.alerts.iter_records()],
        exact_auc=exact_auc,
        streaming_auc=snapshot.get("quality.streaming_auc"),
        slo=slo_snapshot,
        slo_exhausted=slo_exhausted,
    )
