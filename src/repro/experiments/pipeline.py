"""Shared experiment pipelines: build-once artifacts reused across tables.

Tables II and III both need a trained ATNN and a fitted popularity
predictor over the same Tmall world; :func:`build_tmall_artifacts` builds
them once.  Likewise Tables IV and V share a trained multi-task ATNN via
:func:`build_eleme_artifacts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    ATNN,
    ATNNTrainer,
    MultiTaskATNN,
    MultiTaskTrainer,
    PopularityPredictor,
    TrainingHistory,
)
from repro.data import train_test_split
from repro.data.synthetic import (
    ElemeWorld,
    TmallWorld,
    generate_eleme_world,
    generate_tmall_world,
)
from repro.experiments.configs import ExperimentPreset, get_preset
from repro.utils.rng import derive_seed

__all__ = [
    "TmallArtifacts",
    "ElemeArtifacts",
    "build_tmall_artifacts",
    "build_eleme_artifacts",
]


@dataclass
class TmallArtifacts:
    """A trained e-commerce stack ready for popularity experiments."""

    preset: ExperimentPreset
    world: TmallWorld
    model: ATNN
    predictor: PopularityPredictor
    history: TrainingHistory
    test_auc_encoder: float
    test_auc_generator: float


@dataclass
class ElemeArtifacts:
    """A trained food-delivery stack ready for Tables IV / V."""

    preset: ExperimentPreset
    world: ElemeWorld
    model: MultiTaskATNN
    history: TrainingHistory


def build_tmall_artifacts(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
    user_group_fraction: float = 0.25,
    keep_individual_users: bool = False,
) -> TmallArtifacts:
    """Generate the world, train ATNN, and fit the popularity service.

    Parameters
    ----------
    preset:
        Size preset name.
    world:
        Optional pre-generated world to reuse.
    user_group_fraction:
        Fraction of most-active users forming the paper's user group.
    keep_individual_users:
        Keep per-user vectors in the predictor (needed by the exact
        pairwise baseline in the ablations/complexity benchmarks).
    """
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)

    rng = np.random.default_rng(derive_seed(config.seed, "pipeline-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)

    model = ATNN(
        world.schema,
        config.tower,
        rng=np.random.default_rng(derive_seed(config.seed, "pipeline-atnn")),
    )
    trainer = ATNNTrainer(
        lambda_similarity=config.lambda_similarity,
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        seed=derive_seed(config.seed, "pipeline-train"),
    )
    history = trainer.fit(model, train, valid=test)

    predictor = PopularityPredictor(model)
    predictor.fit_user_group(
        world.active_user_group(user_group_fraction),
        keep_individual=keep_individual_users,
    )
    return TmallArtifacts(
        preset=config,
        world=world,
        model=model,
        predictor=predictor,
        history=history,
        test_auc_encoder=history.last("valid_auc_encoder"),
        test_auc_generator=history.last("valid_auc_generator"),
    )


def build_eleme_artifacts(
    preset: str = "default",
    world: Optional[ElemeWorld] = None,
    adversarial: bool = True,
) -> ElemeArtifacts:
    """Generate the food-delivery world and train a multi-task model.

    Parameters
    ----------
    preset:
        Size preset name.
    world:
        Optional pre-generated world to reuse.
    adversarial:
        Train the full multi-task ATNN (True) or the non-adversarial
        TNN-DCN comparison model (False).
    """
    config = get_preset(preset)
    if world is None:
        world = generate_eleme_world(config.eleme)

    rng = np.random.default_rng(derive_seed(config.seed, "eleme-split"))
    train, test = train_test_split(world.samples, 0.2, rng)

    label = "atnn" if adversarial else "tnn-dcn"
    model = MultiTaskATNN(
        world.schema,
        config.tower,
        rng=np.random.default_rng(derive_seed(config.seed, f"eleme-{label}")),
    )
    trainer = MultiTaskTrainer(
        lambda_vppv=config.lambda_vppv,
        lambda_similarity=config.lambda_similarity_multitask,
        adversarial=adversarial,
        epochs=config.eleme_epochs,
        batch_size=config.eleme_batch_size,
        lr=config.lr,
        seed=derive_seed(config.seed, f"eleme-{label}-train"),
    )
    history = trainer.fit(model, train, valid=test)
    return ElemeArtifacts(preset=config, world=world, model=model, history=history)
