"""Table II — offline commercial-value validation of popularity prediction.

Rank all new arrivals by the ATNN popularity score (generator item vector
against the stored mean user vector), split them into five equal groups by
predicted rank, release them, and observe average IPV / AtF / GMV over the
first 7, 14 and 30 days.  Higher-ranked groups should show higher business
indicators, with the top-20% group best on every column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.synthetic import BehaviorConfig, TmallWorld, simulate_behavior
from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.metrics import QuintilePanel, popularity_group_panel
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["Table2Result", "run_table2", "PAPER_TABLE2_TOP_GROUP"]

# The paper's top-quintile row (for shape reference in EXPERIMENTS.md).
PAPER_TABLE2_TOP_GROUP: Dict[str, float] = {
    "7-day IPV": 63.94,
    "14-day IPV": 132.24,
    "30-day IPV": 199.30,
    "7-day AtF": 1.06,
    "14-day AtF": 2.19,
    "30-day AtF": 3.46,
    "7-day GMV": 51.40,
    "14-day GMV": 110.50,
    "30-day GMV": 226.32,
}

_DAYS = (7, 14, 30)
_METRICS = ("IPV", "AtF", "GMV")


@dataclass
class Table2Result:
    """The quintile panel plus rendering helpers."""

    panel: QuintilePanel
    preset: str
    scores: np.ndarray

    def render(self) -> str:
        """ASCII table in the paper's Table II layout."""
        headers = ["Popularity Ranking (Top %)"] + [
            f"{day}-day {metric}" for metric in _METRICS for day in _DAYS
        ]
        body: List[List[object]] = []
        for group_index, group_label in enumerate(self.panel.group_labels):
            row: List[object] = [group_label]
            for metric in _METRICS:
                for day in _DAYS:
                    row.append(self.panel.column(metric, day)[group_index])
            body.append(row)
        return format_table(
            headers,
            body,
            precision=2,
            title=f"Table II — commercial value of popularity ranking (preset={self.preset})",
        )

    def as_dict(self):
        """JSON-friendly summary: every column keyed by its header."""
        return {
            "group_labels": list(self.panel.group_labels),
            "columns": {key: list(map(float, col)) for key, col in self.panel.values.items()},
        }

    def top_group_lift(self, metric: str, day: int) -> float:
        """Top-quintile mean over the overall average (>1 means signal)."""
        column = self.panel.column(metric, day)
        average = column[-1]
        if average == 0:
            raise ValueError(f"average {metric}@{day} is zero; no lift defined")
        return column[0] / average


def run_table2(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    behavior: BehaviorConfig = BehaviorConfig(),
) -> Table2Result:
    """Reproduce Table II.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack from :func:`build_tmall_artifacts`.
    behavior:
        Post-release simulation rates.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world: TmallWorld = artifacts.world

    scores = artifacts.predictor.score_items(world.new_items)

    rng = np.random.default_rng(
        derive_seed(artifacts.preset.seed, "table2-behavior")
    )
    panel_data = simulate_behavior(
        world.new_item_popularity, world.new_item_prices, rng, behavior
    )
    metrics_by_day: Dict[str, Dict[int, np.ndarray]] = {
        "IPV": {day: panel_data.cumulative("ipv", day) for day in _DAYS},
        "AtF": {day: panel_data.cumulative("atf", day) for day in _DAYS},
        "GMV": {day: panel_data.cumulative("gmv", day) for day in _DAYS},
    }
    panel = popularity_group_panel(scores, metrics_by_day, n_groups=5)
    return Table2Result(panel=panel, preset=artifacts.preset.name, scores=scores)
