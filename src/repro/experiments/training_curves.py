"""Training-dynamics experiment: per-epoch quality of both ATNN paths.

The paper reports only final numbers; this experiment records the
validation AUC of the encoder and generator paths and the similarity loss
``L_s`` per epoch, documenting that (a) both paths improve together and
(b) the adversarial game converges (``L_s`` decreases).  Functions return
plain data series so callers can plot or tabulate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import ATNN, ATNNTrainer
from repro.data import train_test_split
from repro.data.synthetic import TmallWorld, generate_tmall_world
from repro.experiments.configs import get_preset
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["TrainingCurves", "run_training_curves"]


@dataclass
class TrainingCurves:
    """Per-epoch series from one ATNN training run."""

    loss_i: List[float]
    loss_g: List[float]
    loss_s: List[float]
    auc_encoder: List[float]
    auc_generator: List[float]
    preset: str

    def as_dict(self):
        """JSON-friendly summary (per-epoch series)."""
        return {
            "loss_i": self.loss_i,
            "loss_g": self.loss_g,
            "loss_s": self.loss_s,
            "auc_encoder": self.auc_encoder,
            "auc_generator": self.auc_generator,
        }

    def render(self) -> str:
        """ASCII table: one row per epoch."""
        rows = [
            [
                epoch + 1,
                self.loss_i[epoch],
                self.loss_g[epoch],
                self.loss_s[epoch],
                self.auc_encoder[epoch],
                self.auc_generator[epoch],
            ]
            for epoch in range(len(self.loss_i))
        ]
        return format_table(
            ["Epoch", "L_i", "L_g", "L_s", "AUC encoder", "AUC generator"],
            rows,
            precision=4,
            title=f"ATNN training dynamics (preset={self.preset})",
        )

    @property
    def n_epochs(self) -> int:
        return len(self.loss_i)


def run_training_curves(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
    epochs: Optional[int] = None,
) -> TrainingCurves:
    """Train ATNN and capture per-epoch diagnostics.

    Parameters
    ----------
    preset:
        Size preset name.
    world:
        Optional pre-generated world.
    epochs:
        Override the preset's epoch count (e.g. for a longer curve).
    """
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rng = np.random.default_rng(derive_seed(config.seed, "curves-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)

    model = ATNN(
        world.schema,
        config.tower,
        rng=np.random.default_rng(derive_seed(config.seed, "curves-model")),
    )
    trainer = ATNNTrainer(
        lambda_similarity=config.lambda_similarity,
        epochs=epochs if epochs is not None else config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        seed=derive_seed(config.seed, "curves-train"),
    )
    history = trainer.fit(model, train, valid=test)
    return TrainingCurves(
        loss_i=history.series("loss_i"),
        loss_g=history.series("loss_g"),
        loss_s=history.series("loss_s"),
        auc_encoder=history.series("valid_auc_encoder"),
        auc_generator=history.series("valid_auc_generator"),
        preset=preset,
    )
