"""Experiment registry: run any paper table (or all of them) by name."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.obs.logging import get_logger, kv

from repro.experiments.agg_smoke import run_agg_smoke
from repro.experiments.ablations import (
    run_cross_depth_ablation,
    run_embedding_sharing_ablation,
    run_lambda_ablation,
)
from repro.experiments.complexity import run_complexity
from repro.experiments.extended_baselines import run_extended_baselines
from repro.experiments.pipeline import build_eleme_artifacts, build_tmall_artifacts
from repro.experiments.retrieval import run_retrieval
from repro.experiments.segmentation import run_segmentation
from repro.experiments.serving_eval import run_monitored_serving, run_serving_eval
from repro.experiments.slo_smoke import run_slo_smoke
from repro.experiments.training_curves import run_training_curves
from repro.experiments.transfer import run_transfer
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "available_experiments"]

_LOGGER = get_logger("experiments")

EXPERIMENTS: Dict[str, Callable] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "complexity": run_complexity,
    "extended-baselines": run_extended_baselines,
    "serving-warmup": run_serving_eval,
    "serving-monitor": run_monitored_serving,
    "slo-smoke": run_slo_smoke,
    "agg-smoke": run_agg_smoke,
    "retrieval": run_retrieval,
    "segmentation": run_segmentation,
    "training-curves": run_training_curves,
    "transfer-movies": run_transfer,
    "ablation-lambda": run_lambda_ablation,
    "ablation-sharing": run_embedding_sharing_ablation,
    "ablation-cross-depth": run_cross_depth_ablation,
}


def available_experiments() -> List[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, preset: str = "default"):
    """Run one experiment by registry name and return its result object.

    Raises
    ------
    ValueError
        If the name is not registered.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {available_experiments()}"
        ) from None
    _LOGGER.info(kv("experiment started", experiment=name, preset=preset))
    start = time.perf_counter()
    result = runner(preset=preset)
    _LOGGER.info(
        kv(
            "experiment finished",
            experiment=name,
            preset=preset,
            elapsed_s=time.perf_counter() - start,
        )
    )
    return result


def run_all(
    preset: str = "default",
    verbose: bool = True,
    include_supplementary: bool = False,
) -> Dict[str, object]:
    """Run every table experiment, sharing trained artifacts where possible.

    Parameters
    ----------
    preset:
        Size preset name.
    verbose:
        Print each rendered table as it completes.
    include_supplementary:
        Also run the beyond-the-paper studies (extended baselines,
        retrieval, serving warm-up, segmentation, movie transfer) —
        roughly doubles the runtime.

    Returns a mapping from experiment name to its result object.
    """
    results: Dict[str, object] = {}
    started = time.perf_counter()
    _LOGGER.info(
        kv(
            "run_all started",
            preset=preset,
            include_supplementary=include_supplementary,
        )
    )

    tmall = build_tmall_artifacts(preset, keep_individual_users=True)
    results["table1"] = run_table1(preset, world=tmall.world)
    results["table2"] = run_table2(preset, artifacts=tmall)
    results["table3"] = run_table3(preset, artifacts=tmall)
    results["complexity"] = run_complexity(preset, artifacts=tmall)

    eleme = build_eleme_artifacts(preset, adversarial=True)
    results["table4"] = run_table4(preset, world=eleme.world, atnn_artifacts=eleme)
    results["table5"] = run_table5(preset, world=eleme.world, artifacts=eleme)

    order = ["table1", "table2", "table3", "table4", "table5", "complexity"]
    if include_supplementary:
        results["extended-baselines"] = run_extended_baselines(
            preset, world=tmall.world
        )
        results["retrieval"] = run_retrieval(preset, artifacts=tmall)
        results["serving-warmup"] = run_serving_eval(preset, artifacts=tmall)
        results["segmentation"] = run_segmentation(preset, artifacts=tmall)
        results["transfer-movies"] = run_transfer(preset)
        order += [
            "extended-baselines",
            "retrieval",
            "serving-warmup",
            "segmentation",
            "transfer-movies",
        ]

    if verbose:
        for name in order:
            print(results[name].render())
            print()
    _LOGGER.info(
        kv(
            "run_all finished",
            preset=preset,
            experiments=len(results),
            elapsed_s=time.perf_counter() - started,
        )
    )
    return results
