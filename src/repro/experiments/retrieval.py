"""Personalised-recommendation experiment (downstream application #1).

The deployed ATNN feeds personalised search & recommendation.  This
experiment evaluates that path: for each held-out user with enough test
interactions, rank their candidate items by (a) the ATNN encoder score,
(b) the ATNN cold-start generator score, (c) a non-personalised
popularity heuristic (historical CTR statistic) and (d) random, then
compare top-k ranking quality (hit rate / recall / NDCG / MRR).

Expected shape: personalised ATNN paths beat the popularity heuristic,
which beats random — personalisation is the point of the two-tower
geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data import train_test_split
from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.metrics import ranking_report
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["RetrievalResult", "run_retrieval"]


@dataclass
class RetrievalResult:
    """Per-method ranking reports."""

    reports: Dict[str, Dict[str, float]]
    k: int
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {"k": self.k, "reports": self.reports}

    def render(self) -> str:
        """ASCII table: one row per scoring method."""
        headers = ["Method", f"HitRate@{self.k}", f"Recall@{self.k}",
                   f"NDCG@{self.k}", f"MRR@{self.k}", "Users"]
        rows = [
            [
                method,
                report["hit_rate"],
                report["recall"],
                report["ndcg"],
                report["mrr"],
                int(report["n_users"]),
            ]
            for method, report in self.reports.items()
        ]
        return format_table(
            headers,
            rows,
            precision=4,
            title=f"Personalised recommendation quality (preset={self.preset})",
        )

    def metric(self, method: str, name: str) -> float:
        """One method's metric value."""
        return self.reports[method][name]


def _per_user_groups(
    test, min_candidates: int
) -> List[np.ndarray]:
    """Row-index groups per user with enough candidates and both classes."""
    user_ids = test.features["user_id"]
    labels = test.label("ctr")
    order = np.argsort(user_ids, kind="mergesort")
    groups: List[np.ndarray] = []
    start = 0
    sorted_ids = user_ids[order]
    for end in range(1, order.size + 1):
        if end == order.size or sorted_ids[end] != sorted_ids[start]:
            rows = order[start:end]
            if rows.size >= min_candidates:
                group_labels = labels[rows]
                if 0.0 < group_labels.mean() < 1.0:
                    groups.append(rows)
            start = end
    return groups


def run_retrieval(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    k: int = 5,
    min_candidates: int = 8,
) -> RetrievalResult:
    """Evaluate per-user top-k ranking quality of four scoring methods.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack.
    k:
        Ranking cutoff.
    min_candidates:
        Minimum test rows a user needs to be evaluated.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world = artifacts.world
    seed = artifacts.preset.seed

    rng = np.random.default_rng(derive_seed(seed, "pipeline-split"))
    _, test = train_test_split(world.interactions, 0.2, rng)
    groups = _per_user_groups(test, min_candidates)
    if not groups:
        raise ValueError(
            "no users with enough test candidates; increase world size or "
            "lower min_candidates"
        )

    encoder_scores = artifacts.model.predict_proba(test.features)
    generator_scores = artifacts.model.predict_proba_cold_start(test.features)
    popularity_scores = test.features["stat_hist_ctr"]
    random_rng = np.random.default_rng(derive_seed(seed, "retrieval-random"))
    random_scores = random_rng.random(len(test))

    labels = test.label("ctr")
    methods = {
        "ATNN (encoder)": encoder_scores,
        "ATNN (generator)": generator_scores,
        "Popularity (hist CTR)": popularity_scores,
        "Random": random_scores,
    }

    reports: Dict[str, Dict[str, float]] = {}
    for method, scores in methods.items():
        per_user: List[Tuple[np.ndarray, np.ndarray]] = []
        for rows in groups:
            cutoff = min(k, rows.size)
            if cutoff < k:
                continue
            per_user.append((labels[rows], scores[rows]))
        reports[method] = ranking_report(per_user, k)
    return RetrievalResult(reports=reports, k=k, preset=artifacts.preset.name)
