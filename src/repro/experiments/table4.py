"""Table IV — offline food-delivery experiment (multi-task ATNN vs TNN-DCN).

Both models are trained on the same (restaurant, user-group) samples with
VpPV and GMV labels; at test time the restaurants are treated as *new
applicants* — their statistics columns are zeroed, exactly the serving
condition.  TNN-DCN (the non-adversarial multi-task two-tower) must push
zeroed statistics through its encoder; ATNN scores through its generator,
which never needed statistics.  Reported metric: MAE per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.data import train_test_split
from repro.data.cold_start import zero_statistics
from repro.data.dataset import InteractionDataset
from repro.data.synthetic import ElemeWorld, generate_eleme_world
from repro.experiments.configs import get_preset
from repro.experiments.pipeline import ElemeArtifacts, build_eleme_artifacts
from repro.metrics import mae
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["Table4Result", "run_table4", "PAPER_TABLE4"]

PAPER_TABLE4 = {
    "TNN-DCN": {"vppv_mae": 0.077, "gmv_mae": 1.445},
    "ATNN": {"vppv_mae": 0.069, "gmv_mae": 1.206},
    "improvement": {"vppv": 0.104, "gmv": 0.165},
}


@dataclass
class Table4Result:
    """MAEs per model/task plus derived improvements."""

    tnn_dcn_vppv_mae: float
    tnn_dcn_gmv_mae: float
    atnn_vppv_mae: float
    atnn_gmv_mae: float
    preset: str

    @property
    def vppv_improvement(self) -> float:
        """Relative VpPV MAE reduction of ATNN over TNN-DCN."""
        return (self.tnn_dcn_vppv_mae - self.atnn_vppv_mae) / self.tnn_dcn_vppv_mae

    @property
    def gmv_improvement(self) -> float:
        """Relative GMV MAE reduction of ATNN over TNN-DCN."""
        return (self.tnn_dcn_gmv_mae - self.atnn_gmv_mae) / self.tnn_dcn_gmv_mae

    def render(self) -> str:
        """ASCII table in the paper's Table IV layout."""
        body = [
            ["TNN-DCN", self.tnn_dcn_vppv_mae, self.tnn_dcn_gmv_mae],
            ["ATNN", self.atnn_vppv_mae, self.atnn_gmv_mae],
            [
                "Improvement %",
                100.0 * self.vppv_improvement,
                100.0 * self.gmv_improvement,
            ],
        ]
        return format_table(
            ["Model", "VpPV (MAE)", "GMV (MAE, log scale)"],
            body,
            precision=4,
            title=f"Table IV — food delivery offline (preset={self.preset})",
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly summary."""
        return {
            "tnn_dcn_vppv_mae": self.tnn_dcn_vppv_mae,
            "tnn_dcn_gmv_mae": self.tnn_dcn_gmv_mae,
            "atnn_vppv_mae": self.atnn_vppv_mae,
            "atnn_gmv_mae": self.atnn_gmv_mae,
            "vppv_improvement": self.vppv_improvement,
            "gmv_improvement": self.gmv_improvement,
        }


def _zero_statistics(dataset: InteractionDataset) -> Dict[str, np.ndarray]:
    """Feature dict with statistic columns zeroed (new applicants)."""
    return zero_statistics(dataset.schema, dataset.features)


def run_table4(
    preset: str = "default",
    world: Optional[ElemeWorld] = None,
    atnn_artifacts: Optional[ElemeArtifacts] = None,
) -> Table4Result:
    """Reproduce Table IV.

    Parameters
    ----------
    preset:
        Size preset name.
    world:
        Optional pre-generated food-delivery world (shared with Table V).
    atnn_artifacts:
        Optional pre-trained ATNN stack; the TNN-DCN comparator is always
        trained here.
    """
    config = get_preset(preset)
    if world is None:
        world = generate_eleme_world(config.eleme)
    if atnn_artifacts is None:
        atnn_artifacts = build_eleme_artifacts(preset, world=world, adversarial=True)
    baseline = build_eleme_artifacts(preset, world=world, adversarial=False)

    rng = np.random.default_rng(derive_seed(config.seed, "eleme-split"))
    _, test = train_test_split(world.samples, 0.2, rng)
    cold_features = _zero_statistics(test)

    results = {}
    for task in ("vppv", "gmv"):
        truth = test.label(task)
        baseline_prediction = baseline.model.predict(
            cold_features, task, cold_start=False
        )
        atnn_prediction = atnn_artifacts.model.predict(
            cold_features, task, cold_start=True
        )
        results[f"tnn_dcn_{task}"] = mae(truth, baseline_prediction)
        results[f"atnn_{task}"] = mae(truth, atnn_prediction)

    return Table4Result(
        tnn_dcn_vppv_mae=results["tnn_dcn_vppv"],
        tnn_dcn_gmv_mae=results["tnn_dcn_gmv"],
        atnn_vppv_mae=results["atnn_vppv"],
        atnn_gmv_mae=results["atnn_gmv"],
        preset=preset,
    )
