"""Table III — online A/B test: ATNN selection vs expert selection.

Both policies pick the same number of "potential popular" new arrivals
from the candidate pool (the paper selects 300k out of tens of millions;
we select the same ~20% fraction of the synthetic pool).  Each selected
item is released and the *average time to its first five successful
transactions* is measured — shorter is better.  Realised behaviour is
simulated once for the full pool with a shared random stream, so the two
policies are compared on identical item outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import ExpertConfig, ExpertSelector, first_k_transaction_time, select_top_k
from repro.data.synthetic import BehaviorConfig, simulate_behavior
from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["Table3Result", "run_table3", "PAPER_TABLE3"]

PAPER_TABLE3 = {
    "expert_days": 10.47,
    "atnn_days": 9.72,
    "improvement": 0.0716,
}


@dataclass
class Table3Result:
    """A/B outcome: mean first-five-transaction times per policy."""

    expert_days: float
    atnn_days: float
    n_selected: int
    preset: str

    @property
    def improvement(self) -> float:
        """Relative reduction in time-to-five-transactions (positive = ATNN wins)."""
        return (self.expert_days - self.atnn_days) / self.expert_days

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "expert_days": self.expert_days,
            "atnn_days": self.atnn_days,
            "improvement": self.improvement,
            "n_selected": self.n_selected,
        }

    def render(self) -> str:
        """ASCII table in the paper's Table III layout."""
        return format_table(
            ["Expert selection", "ATNN selection", "Improvement %"],
            [[self.expert_days, self.atnn_days, 100.0 * self.improvement]],
            precision=2,
            title=(
                f"Table III — online A/B test, avg days to first 5 transactions "
                f"(n={self.n_selected} per arm, preset={self.preset})"
            ),
        )


def run_table3(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    selection_fraction: float = 0.2,
    behavior: BehaviorConfig = BehaviorConfig(),
    expert: Optional[ExpertConfig] = None,
) -> Table3Result:
    """Reproduce Table III.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack.
    selection_fraction:
        Fraction of the candidate pool each policy may select.
    behavior:
        Post-release simulation rates.
    expert:
        Expert-simulator knobs.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world = artifacts.world
    seed = artifacts.preset.seed

    pool = world.new_items
    k = max(1, int(round(len(pool) * selection_fraction)))

    # The expert partially perceives true item quality (domain knowledge)
    # on top of the salient profile features; the judgement noise keeps
    # them below a perfect oracle.
    expert_rng = np.random.default_rng(derive_seed(seed, "table3-expert"))
    expert_scores = ExpertSelector(expert).score(
        pool, expert_rng, insight=world.new_item_quality
    )
    expert_picks = select_top_k(expert_scores, k)

    model_scores = artifacts.predictor.score_items(pool)
    model_picks = select_top_k(model_scores, k)

    behavior_rng = np.random.default_rng(derive_seed(seed, "table3-behavior"))
    panel = simulate_behavior(
        world.new_item_popularity, world.new_item_prices, behavior_rng, behavior
    )
    expert_days = first_k_transaction_time(
        panel.first_k_day[expert_picks], panel.horizon_days
    )
    atnn_days = first_k_transaction_time(
        panel.first_k_day[model_picks], panel.horizon_days
    )
    return Table3Result(
        expert_days=expert_days,
        atnn_days=atnn_days,
        n_selected=k,
        preset=artifacts.preset.name,
    )
