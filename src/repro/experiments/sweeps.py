"""Hyper-parameter sweep harness for ATNN.

A small deterministic grid runner: every combination of the supplied
parameter lists is trained on one shared world/split and scored on both
prediction paths.  Used by the ablation benchmarks' bigger siblings and
handy for users tuning the model on their own data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import ATNN, ATNNTrainer, TowerConfig
from repro.data import train_test_split
from repro.data.synthetic import TmallWorld, generate_tmall_world
from repro.experiments.configs import get_preset
from repro.metrics import roc_auc
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["SweepPoint", "SweepResult", "run_atnn_sweep"]


@dataclass
class SweepPoint:
    """One grid point's settings and scores."""

    settings: Dict[str, object]
    auc_generator: float
    auc_encoder: float

    def label(self) -> str:
        """Human-readable settings string."""
        return ", ".join(f"{k}={v}" for k, v in self.settings.items())


@dataclass
class SweepResult:
    """All grid points, renderable and sortable."""

    points: List[SweepPoint]
    preset: str

    def best(self, by: str = "auc_generator") -> SweepPoint:
        """Grid point with the highest score on ``by``."""
        if by not in ("auc_generator", "auc_encoder"):
            raise ValueError(f"unknown criterion {by!r}")
        return max(self.points, key=lambda point: getattr(point, by))

    def render(self) -> str:
        """ASCII table sorted by cold-start AUC, best first."""
        ordered = sorted(
            self.points, key=lambda point: point.auc_generator, reverse=True
        )
        return format_table(
            ["Settings", "Cold-start AUC", "Complete AUC"],
            [[p.label(), p.auc_generator, p.auc_encoder] for p in ordered],
            precision=4,
            title=f"ATNN hyper-parameter sweep (preset={self.preset})",
        )


_SWEEPABLE = ("lr", "lambda_similarity", "num_cross_layers", "vector_dim")


def run_atnn_sweep(
    grid: Dict[str, Sequence],
    preset: str = "smoke",
    world: Optional[TmallWorld] = None,
) -> SweepResult:
    """Train ATNN at every grid point and score both paths.

    Parameters
    ----------
    grid:
        Mapping from parameter name to candidate values.  Supported
        parameters: ``lr``, ``lambda_similarity``, ``num_cross_layers``,
        ``vector_dim``.
    preset:
        Size preset supplying the world, epochs and defaults.
    world:
        Optional pre-generated world to reuse.
    """
    unknown = sorted(set(grid) - set(_SWEEPABLE))
    if unknown:
        raise ValueError(
            f"unsupported sweep parameters {unknown}; supported: {_SWEEPABLE}"
        )
    if not grid:
        raise ValueError("grid must contain at least one parameter")

    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rng = np.random.default_rng(derive_seed(config.seed, "sweep-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)

    names = list(grid)
    points: List[SweepPoint] = []
    for values in itertools.product(*(grid[name] for name in names)):
        settings = dict(zip(names, values))
        tower = config.tower
        if "num_cross_layers" in settings:
            tower = replace(tower, num_cross_layers=int(settings["num_cross_layers"]))
        if "vector_dim" in settings:
            tower = replace(tower, vector_dim=int(settings["vector_dim"]))

        seed_label = "sweep-" + "-".join(f"{k}{v}" for k, v in settings.items())
        model = ATNN(
            world.schema,
            tower,
            rng=np.random.default_rng(derive_seed(config.seed, seed_label)),
        )
        trainer = ATNNTrainer(
            lambda_similarity=float(
                settings.get("lambda_similarity", config.lambda_similarity)
            ),
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=float(settings.get("lr", config.lr)),
            seed=derive_seed(config.seed, seed_label + "-train"),
        )
        trainer.fit(model, train)
        points.append(
            SweepPoint(
                settings=settings,
                auc_generator=roc_auc(
                    test.label("ctr"), model.predict_proba_cold_start(test.features)
                ),
                auc_encoder=roc_auc(
                    test.label("ctr"), model.predict_proba(test.features)
                ),
            )
        )
    return SweepResult(points=points, preset=preset)
