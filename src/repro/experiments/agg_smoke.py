"""Fleet aggregation smoke: sharded workers + a merging collector.

The experiment exercises the whole :mod:`repro.obs.agg` path end to
end, the way a sharded serving deployment would:

* a **router** process opens a ``route`` request, injects its trace
  context into a carrier (:meth:`~repro.obs.context.TraceContext.\
inject`) and spawns N **worker** subprocesses, each serving a stream of
  requests under its own :class:`~repro.obs.session.TelemetrySession`
  with a shard label and a :class:`~repro.obs.agg.TelemetryShipper`
  spooling snapshot frames;
* one shard gets an **injected latency spike** (every request sleeps
  past the latency SLO bound) — the other shards stay clean;
* each process dumps a flight-recorder bundle, and the first request of
  every worker chains to the router's carrier, so the merged view can
  stitch one cross-process tree per trace;
* the router then runs a :class:`~repro.obs.agg.TelemetryCollector`
  over the spool directory and asserts the fleet-level invariants:
  merged counters equal the per-process sums exactly, merged histogram
  quantiles match the known observation multiset within
  ``QUANTILE_RTOL``, the router→shard trace stitches into one tree
  spanning more than one pid, and the latency burn-rate rule fires on
  the *merged* windows even though two of three shards were clean.

CI's ``agg-smoke`` job runs this with the smoke preset::

    atnn-repro agg-smoke --preset smoke
    python -m repro.experiments.agg_smoke --output results/
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.agg import (
    TelemetryCollector,
    load_bundle_requests,
    stitched_chrome_trace,
)
from repro.obs.context import TraceContext, request_scope, use_trace_context
from repro.obs.flight import FlightRecorder
from repro.obs.session import TelemetrySession
from repro.obs.slo import SLO, SLOTracker
from repro.obs.tracing import maybe_span

__all__ = ["AggSmokeResult", "agg_slos", "run_agg_smoke", "QUANTILE_RTOL"]

# Documented tolerance for merged-histogram quantiles in this smoke:
# the observation multiset (a few hundred values) stays below the
# histogram sample capacity, so merging concatenates full samples and
# quantiles are exact up to rank interpolation — 10% relative slack
# absorbs the interpolation at the multiset's value steps.
QUANTILE_RTOL = 0.10

# Spiked-shard sleep per request vs. the latency SLO bound: every
# spiked request breaches, every clean request stays far under.
_LATENCY_THRESHOLD = 0.005
_SPIKE_SECONDS = 0.02


def agg_slos(latency_threshold: float = _LATENCY_THRESHOLD) -> List[SLO]:
    """The smoke-run SLO set, shaped for deterministic fleet merges.

    ``fast_window == window`` on purpose: the multi-window burn rate is
    ``min(fast, slow)``, and with distinct windows the *fast* burn of
    the merged view would depend on which shard's frame merged last
    (the replayed tail).  One shared window makes the merged burn rate
    a pure function of the event multiset, so the spiked-shard alert
    fires regardless of frame arrival order.
    """
    return [
        SLO.latency(
            "serving-latency",
            latency_threshold,
            objective=0.9,
            window=512,
            fast_window=512,
            min_events=16,
            burn_alert=2.0,
        ),
        SLO.availability(
            "serving-availability",
            objective=0.99,
            window=512,
            fast_window=512,
            min_events=16,
        ),
    ]


def _clean_latency(index: int) -> float:
    """Synthetic per-request latency observation for clean traffic."""
    return 0.001 * (1 + index % 10)


def _expected_observations(
    n_workers: int, events_per_worker: int, spiked_shard: int
) -> List[float]:
    """The exact multiset of ``agg.latency`` observations, fleet-wide."""
    values: List[float] = []
    for worker in range(n_workers):
        for index in range(events_per_worker):
            values.append(
                0.25 if worker == spiked_shard else _clean_latency(index)
            )
    return values


def _exact_quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of the known observation multiset."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


# ----------------------------------------------------------------------
# Worker subprocess body
# ----------------------------------------------------------------------
def _run_worker(args) -> int:
    carrier = json.loads(args.carrier)
    spiked = bool(args.spike)
    recorder = FlightRecorder(capacity=256, tail_exemplars=8, auto_dump=False)
    with TelemetrySession(
        profile_autograd=False,
        label=f"agg-smoke:{args.shard}",
        slo=SLOTracker(agg_slos(), evaluate_every=0),
        flight=recorder,
        spool_dir=args.spool_dir,
        shard_label=args.shard,
    ) as session:
        parent = TraceContext.extract(carrier)
        for index in range(args.events):
            # The first request chains to the router's injected context,
            # so the merged bundles stitch router→shard into one tree.
            scope = (
                use_trace_context(parent) if index == 0 else _NULL_SCOPE
            )
            with scope:
                with request_scope("serve"):
                    with maybe_span("score"):
                        if spiked:
                            time.sleep(_SPIKE_SECONDS)
                    session.registry.counter("agg.requests").inc()
                    session.registry.histogram("agg.latency").observe(
                        0.25 if spiked else _clean_latency(index)
                    )
        recorder.dump_postmortem(
            "agg-smoke", directory=Path(args.bundle_dir)
        )
    print(json.dumps({"shard": args.shard, "requests": args.events}))
    return 0


class _NullScope:
    """Stand-in for ``use_trace_context`` on non-chained requests."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        return None


_NULL_SCOPE = _NullScope()


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class AggSmokeResult:
    """Fleet-level invariants checked over the merged view."""

    preset: str
    n_workers: int
    events_per_worker: int
    processes: List[str] = field(default_factory=list)
    merged_requests: float = 0.0
    expected_requests: int = 0
    merged_p50: float = 0.0
    merged_p99: float = 0.0
    expected_p50: float = 0.0
    expected_p99: float = 0.0
    stitched_traces: int = 0
    fleet_alerts: List[str] = field(default_factory=list)
    tracer_dropped: float = 0.0
    shipper_overhead_ratio: Optional[float] = None

    @property
    def counters_exact(self) -> bool:
        """Merged counter equals the per-process sum, exactly."""
        return self.merged_requests == float(self.expected_requests)

    @property
    def quantiles_ok(self) -> bool:
        """Merged histogram quantiles within :data:`QUANTILE_RTOL`."""
        return (
            abs(self.merged_p50 - self.expected_p50)
            <= QUANTILE_RTOL * self.expected_p50
            and abs(self.merged_p99 - self.expected_p99)
            <= QUANTILE_RTOL * self.expected_p99
        )

    @property
    def stitched_ok(self) -> bool:
        """At least one trace tree spans more than one process."""
        return self.stitched_traces >= 1

    @property
    def alert_fired(self) -> bool:
        """The latency burn-rate rule fired on the merged windows."""
        return any(
            name.startswith("slo-burn:serving-latency")
            for name in self.fleet_alerts
        )

    @property
    def passed(self) -> bool:
        return (
            self.counters_exact
            and self.quantiles_ok
            and self.stitched_ok
            and self.alert_fired
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "preset": self.preset,
            "n_workers": self.n_workers,
            "events_per_worker": self.events_per_worker,
            "processes": list(self.processes),
            "merged_requests": self.merged_requests,
            "expected_requests": self.expected_requests,
            "merged_p50": self.merged_p50,
            "merged_p99": self.merged_p99,
            "expected_p50": self.expected_p50,
            "expected_p99": self.expected_p99,
            "quantile_rtol": QUANTILE_RTOL,
            "stitched_traces": self.stitched_traces,
            "fleet_alerts": list(self.fleet_alerts),
            "tracer_dropped": self.tracer_dropped,
            "counters_exact": self.counters_exact,
            "quantiles_ok": self.quantiles_ok,
            "stitched_ok": self.stitched_ok,
            "alert_fired": self.alert_fired,
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"fleet aggregation smoke (preset={self.preset}, "
            f"{self.n_workers} workers x {self.events_per_worker} requests)",
            f"  processes merged: {', '.join(self.processes)}",
            f"  merged requests: {self.merged_requests:g} "
            f"(expected {self.expected_requests}) "
            f"exact={self.counters_exact}",
            f"  merged latency p50={self.merged_p50:g} p99={self.merged_p99:g} "
            f"(expected p50={self.expected_p50:g} p99={self.expected_p99:g}, "
            f"rtol={QUANTILE_RTOL}) ok={self.quantiles_ok}",
            f"  cross-process traces stitched: {self.stitched_traces} "
            f"ok={self.stitched_ok}",
            "  fleet alerts: "
            + (", ".join(self.fleet_alerts) or "none")
            + f" latency_burn_fired={self.alert_fired}",
            f"  tracer.dropped (fleet): {self.tracer_dropped:g}",
            f"  passed={self.passed}",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Router / driver
# ----------------------------------------------------------------------
def _worker_env() -> Dict[str, str]:
    """Subprocess env with this repro package importable."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    return env


def run_agg_smoke(
    preset: str = "smoke",
    n_workers: int = 3,
    events_per_worker: Optional[int] = None,
    output_dir: Optional[Path] = None,
) -> AggSmokeResult:
    """Run router + N worker subprocesses and merge their telemetry.

    Parameters
    ----------
    preset:
        Sizes the per-worker stream (smoke: 60 requests, else 150).
    n_workers:
        Worker subprocess count; the last shard gets the latency spike.
    events_per_worker:
        Override the per-worker request count.
    output_dir:
        Where spools, bundles and the merged trace land (a temporary
        directory is used — and cleaned up by the OS — when omitted).
    """
    if n_workers < 2:
        raise ValueError(f"n_workers must be >= 2, got {n_workers}")
    if events_per_worker is None:
        events_per_worker = 60 if preset == "smoke" else 150
    base = (
        Path(output_dir)
        if output_dir is not None
        else Path(tempfile.mkdtemp(prefix="agg-smoke-"))
    )
    spool = base / "spool"
    bundles = base / "bundles"
    bundles.mkdir(parents=True, exist_ok=True)
    spiked_shard = n_workers - 1

    # Router: open the fan-out request, inject its context, ship frames.
    router_recorder = FlightRecorder(capacity=64, auto_dump=False)
    with TelemetrySession(
        profile_autograd=False,
        label="agg-smoke:router",
        slo=SLOTracker(agg_slos(), evaluate_every=0),
        flight=router_recorder,
        spool_dir=spool,
        shard_label="router",
    ):
        with request_scope("route") as context:
            carrier = context.inject()
        router_recorder.dump_postmortem("agg-smoke", directory=bundles)

    procs = []
    for worker in range(n_workers):
        command = [
            sys.executable,
            "-m",
            "repro.experiments.agg_smoke",
            "--worker",
            "--spool-dir",
            str(spool),
            "--bundle-dir",
            str(bundles),
            "--shard",
            f"shard-{worker}",
            "--carrier",
            json.dumps(carrier),
            "--events",
            str(events_per_worker),
        ]
        if worker == spiked_shard:
            command.append("--spike")
        procs.append(
            subprocess.Popen(
                command,
                env=_worker_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
        )
    for process in procs:
        stdout, stderr = process.communicate(timeout=300)
        if process.returncode != 0:
            raise RuntimeError(
                f"agg-smoke worker failed (exit {process.returncode}):\n"
                f"{stdout}\n{stderr}"
            )

    # Collector: merge the spools, re-evaluate the rules fleet-wide.
    collector = TelemetryCollector(spool)
    collector.collect()
    alerts = collector.evaluate()

    expected = _expected_observations(
        n_workers, events_per_worker, spiked_shard
    )
    histogram = collector.registry.histogram("agg.latency")
    records = []
    for bundle in sorted(bundles.iterdir()):
        if (bundle / "requests.jsonl").exists():
            records.extend(load_bundle_requests(bundle))
    trace = stitched_chrome_trace(records)
    result = AggSmokeResult(
        preset=preset,
        n_workers=n_workers,
        events_per_worker=events_per_worker,
        processes=sorted(collector.processes),
        merged_requests=collector.registry.counter("agg.requests").value,
        expected_requests=n_workers * events_per_worker,
        merged_p50=histogram.quantile(0.5),
        merged_p99=histogram.quantile(0.99),
        expected_p50=_exact_quantile(expected, 0.5),
        expected_p99=_exact_quantile(expected, 0.99),
        stitched_traces=int(trace["metadata"]["stitched_traces"]),
        fleet_alerts=[alert.rule for alert in alerts],
        tracer_dropped=collector.registry.counter("tracer.dropped").value,
    )
    if output_dir is not None:
        (base / "fleet.txt").write_text(collector.to_text(), encoding="utf-8")
        (base / "merged_trace.json").write_text(
            json.dumps(trace), encoding="utf-8"
        )
        collector.write_jsonl(base / "fleet.jsonl")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.experiments.agg_smoke``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.agg_smoke",
        description="Run the fleet telemetry aggregation smoke check.",
    )
    parser.add_argument("--preset", default="smoke")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for the JSON verdict, spools and merged trace",
    )
    parser.add_argument("--workers", type=int, default=3)
    # Worker-mode flags (internal; the router spawns these).
    parser.add_argument("--worker", action="store_true")
    parser.add_argument("--spool-dir", default=None)
    parser.add_argument("--bundle-dir", default=None)
    parser.add_argument("--shard", default=None)
    parser.add_argument("--carrier", default=None)
    parser.add_argument("--events", type=int, default=60)
    parser.add_argument("--spike", action="store_true")
    args = parser.parse_args(argv)

    if args.worker:
        return _run_worker(args)

    result = run_agg_smoke(
        preset=args.preset,
        n_workers=args.workers,
        output_dir=args.output,
    )
    print(result.render())
    if args.output is not None:
        from repro.utils.serialization import save_json

        save_json(result.as_dict(), args.output / "agg_smoke.json")
    return 0 if result.passed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
