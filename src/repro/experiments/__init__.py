"""Pipelines regenerating every table of the paper's evaluation."""

from repro.experiments.agg_smoke import AggSmokeResult, agg_slos, run_agg_smoke
from repro.experiments.ablations import (
    AblationResult,
    AblationRow,
    run_cross_depth_ablation,
    run_embedding_sharing_ablation,
    run_lambda_ablation,
)
from repro.experiments.complexity import ComplexityResult, ComplexityRow, run_complexity
from repro.experiments.configs import PRESETS, ExperimentPreset, get_preset
from repro.experiments.extended_baselines import run_extended_baselines
from repro.experiments.retrieval import RetrievalResult, run_retrieval
from repro.experiments.segmentation import SegmentationResult, run_segmentation
from repro.experiments.sweeps import SweepPoint, SweepResult, run_atnn_sweep
from repro.experiments.serving_eval import (
    MonitoredServingResult,
    ServingEvalResult,
    ServingStage,
    run_monitored_serving,
    run_serving_eval,
)
from repro.experiments.slo_smoke import (
    SLOPhase,
    SLOSmokeResult,
    run_slo_smoke,
    smoke_slos,
)
from repro.experiments.training_curves import TrainingCurves, run_training_curves
from repro.experiments.transfer import TransferResult, run_transfer
from repro.experiments.pipeline import (
    ElemeArtifacts,
    TmallArtifacts,
    build_eleme_artifacts,
    build_tmall_artifacts,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    available_experiments,
    run_all,
    run_experiment,
)
from repro.experiments.table1 import PAPER_TABLE1, Table1Result, Table1Row, run_table1
from repro.experiments.table2 import PAPER_TABLE2_TOP_GROUP, Table2Result, run_table2
from repro.experiments.table3 import PAPER_TABLE3, Table3Result, run_table3
from repro.experiments.table4 import PAPER_TABLE4, Table4Result, run_table4
from repro.experiments.table5 import PAPER_TABLE5, Table5Result, run_table5

__all__ = [
    "AggSmokeResult",
    "agg_slos",
    "run_agg_smoke",
    "AblationResult",
    "AblationRow",
    "run_cross_depth_ablation",
    "run_embedding_sharing_ablation",
    "run_lambda_ablation",
    "ComplexityResult",
    "ComplexityRow",
    "run_complexity",
    "PRESETS",
    "ExperimentPreset",
    "get_preset",
    "run_extended_baselines",
    "RetrievalResult",
    "run_retrieval",
    "SegmentationResult",
    "run_segmentation",
    "SweepPoint",
    "SweepResult",
    "run_atnn_sweep",
    "MonitoredServingResult",
    "ServingEvalResult",
    "ServingStage",
    "run_monitored_serving",
    "run_serving_eval",
    "SLOPhase",
    "SLOSmokeResult",
    "run_slo_smoke",
    "smoke_slos",
    "TrainingCurves",
    "run_training_curves",
    "TransferResult",
    "run_transfer",
    "ElemeArtifacts",
    "TmallArtifacts",
    "build_eleme_artifacts",
    "build_tmall_artifacts",
    "EXPERIMENTS",
    "available_experiments",
    "run_all",
    "run_experiment",
    "PAPER_TABLE1",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "PAPER_TABLE2_TOP_GROUP",
    "Table2Result",
    "run_table2",
    "PAPER_TABLE3",
    "Table3Result",
    "run_table3",
    "PAPER_TABLE4",
    "Table4Result",
    "run_table4",
    "PAPER_TABLE5",
    "Table5Result",
    "run_table5",
]
