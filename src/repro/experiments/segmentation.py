"""User-segmentation experiment (the paper's future-work direction).

Compares the single-mean-vector popularity ranking against the segmented
predictor on two axes:

* **overall ranking quality** — Spearman correlation with ground-truth
  population popularity (the weighted-mean aggregation should match or
  beat the single mean);
* **niche discovery** — for items flagged as niche (best segment much
  stronger than the weighted average), verify that their best *true*
  per-segment popularity exceeds their overall popularity by more than it
  does for typical items, i.e. the segments are real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.segmented_popularity import SegmentedPopularityPredictor
from repro.data.synthetic.common import sigmoid
from repro.experiments.pipeline import TmallArtifacts, build_tmall_artifacts
from repro.metrics import rank_correlation
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["SegmentationResult", "run_segmentation"]


@dataclass
class SegmentationResult:
    """Summary of the segmentation comparison."""

    n_segments: int
    corr_single_mean: float
    corr_segmented_mean: float
    corr_segmented_max: float
    per_segment_corr: float
    niche_gap_selected: float
    niche_gap_typical: float
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "n_segments": self.n_segments,
            "corr_single_mean": self.corr_single_mean,
            "corr_segmented_mean": self.corr_segmented_mean,
            "corr_segmented_max": self.corr_segmented_max,
            "per_segment_corr": self.per_segment_corr,
            "niche_gap_selected": self.niche_gap_selected,
            "niche_gap_typical": self.niche_gap_typical,
        }

    def render(self) -> str:
        """ASCII report."""
        table = format_table(
            ["Ranking strategy", "Rank corr vs true popularity"],
            [
                ["single mean user vector (paper)", self.corr_single_mean],
                ["segmented, weighted mean", self.corr_segmented_mean],
                ["segmented, best segment (max)", self.corr_segmented_max],
            ],
            precision=4,
            title=(
                f"User segmentation (k={self.n_segments}, preset={self.preset})"
            ),
        )
        return table + (
            f"\nMean per-segment rank correlation (predicted vs true segment "
            f"popularity): {self.per_segment_corr:.4f}"
            f"\nTrue niche gap (best-segment minus overall popularity): "
            f"selected niche items {self.niche_gap_selected:.4f} vs "
            f"typical items {self.niche_gap_typical:.4f}"
        )


def _true_segment_popularity(world, predictor: SegmentedPopularityPredictor):
    """Ground-truth per-segment popularity of every new arrival."""
    assignments = predictor.clustering.assignments
    group_users = predictor._group_user_indices
    segments = []
    for segment in range(predictor.clustering.k):
        members = group_users[assignments == segment]
        if members.size == 0:
            members = group_users
        latents = world.user_latents[members]
        logits = (
            world.config.click_bias
            + world.config.affinity_weight
            * world.new_item_latents @ latents.T / np.sqrt(world.config.latent_dim)
            + world.config.quality_weight * world.new_item_quality[:, None]
        )
        segments.append(sigmoid(logits).mean(axis=1))
    return np.column_stack(segments)


def run_segmentation(
    preset: str = "default",
    artifacts: Optional[TmallArtifacts] = None,
    n_segments: int = 4,
    niche_k: int = 30,
) -> SegmentationResult:
    """Compare single-mean vs segmented popularity prediction.

    Parameters
    ----------
    preset:
        Size preset name (ignored when ``artifacts`` is given).
    artifacts:
        Optional pre-trained stack.
    n_segments:
        Number of taste segments.
    niche_k:
        How many niche items to select for the niche-discovery check.
    """
    if artifacts is None:
        artifacts = build_tmall_artifacts(preset)
    world = artifacts.world
    seed = artifacts.preset.seed

    group = world.active_user_group(0.25)
    predictor = SegmentedPopularityPredictor(artifacts.model, n_segments=n_segments)
    predictor.fit_user_group(
        group, rng=np.random.default_rng(derive_seed(seed, "segmentation"))
    )
    # Remember which world users form the group (for ground-truth checks).
    predictor._group_user_indices = group["user_id"]

    truth = world.new_item_popularity
    single = artifacts.predictor.score_items(world.new_items)
    segmented_mean = predictor.score_items(world.new_items, aggregation="mean")
    segmented_max = predictor.score_items(world.new_items, aggregation="max")

    niche_k = min(niche_k, len(world.new_items))
    niche = predictor.niche_items(world.new_items, top_k=niche_k)
    true_per_segment = _true_segment_popularity(world, predictor)
    true_gap = true_per_segment.max(axis=1) - truth
    selected_gap = float(true_gap[niche].mean())
    typical_gap = float(true_gap.mean())

    predicted_per_segment = predictor.segment_scores(world.new_items)
    segment_corrs = [
        rank_correlation(predicted_per_segment[:, s], true_per_segment[:, s])
        for s in range(predictor.clustering.k)
    ]

    return SegmentationResult(
        n_segments=predictor.clustering.k,
        corr_single_mean=rank_correlation(single, truth),
        corr_segmented_mean=rank_correlation(segmented_mean, truth),
        corr_segmented_max=rank_correlation(segmented_max, truth),
        per_segment_corr=float(np.mean(segment_corrs)),
        niche_gap_selected=selected_gap,
        niche_gap_typical=typical_gap,
        preset=artifacts.preset.name,
    )
