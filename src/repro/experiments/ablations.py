"""Ablation studies over ATNN's design choices.

DESIGN.md calls out four design decisions; each gets an ablation:

* ``lambda`` — the similarity-loss weight (0 disables the adversarial
  distillation entirely; the paper uses 0.1);
* shared vs separate profile embeddings between generator and encoder;
* cross-network depth (0 = plain deep towers);
* mean-user-vector vs exact pairwise popularity ranking (agreement), also
  covered by the complexity experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import ATNN, ATNNTrainer, TowerConfig
from repro.data import train_test_split
from repro.data.synthetic import TmallWorld, generate_tmall_world
from repro.experiments.configs import ExperimentPreset, get_preset
from repro.metrics import roc_auc
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = [
    "AblationRow",
    "AblationResult",
    "run_lambda_ablation",
    "run_embedding_sharing_ablation",
    "run_cross_depth_ablation",
]


@dataclass
class AblationRow:
    """One ablation setting's cold-start and complete-feature AUCs."""

    setting: str
    auc_generator: float
    auc_encoder: float


@dataclass
class AblationResult:
    """Rows of one ablation sweep."""

    name: str
    rows: List[AblationRow]
    preset: str

    def as_dict(self):
        """JSON-friendly summary."""
        return {
            "name": self.name,
            "rows": [
                {
                    "setting": row.setting,
                    "auc_generator": row.auc_generator,
                    "auc_encoder": row.auc_encoder,
                }
                for row in self.rows
            ],
        }

    def render(self) -> str:
        """ASCII report."""
        return format_table(
            ["Setting", "Cold-start AUC (generator)", "Complete AUC (encoder)"],
            [[row.setting, row.auc_generator, row.auc_encoder] for row in self.rows],
            precision=4,
            title=f"Ablation: {self.name} (preset={self.preset})",
        )

    def best(self) -> AblationRow:
        """Row with the best cold-start AUC."""
        return max(self.rows, key=lambda row: row.auc_generator)


def _train_and_score(
    world: TmallWorld,
    preset: ExperimentPreset,
    tower: TowerConfig,
    lambda_similarity: float,
    share_embeddings: bool,
    seed_label: str,
) -> AblationRow:
    rng = np.random.default_rng(derive_seed(preset.seed, "ablation-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)
    model = ATNN(
        world.schema,
        tower,
        share_embeddings=share_embeddings,
        rng=np.random.default_rng(derive_seed(preset.seed, seed_label)),
    )
    trainer = ATNNTrainer(
        lambda_similarity=lambda_similarity,
        epochs=preset.epochs,
        batch_size=preset.batch_size,
        lr=preset.lr,
        seed=derive_seed(preset.seed, seed_label + "-train"),
    )
    trainer.fit(model, train)
    return AblationRow(
        setting=seed_label,
        auc_generator=roc_auc(
            test.label("ctr"), model.predict_proba_cold_start(test.features)
        ),
        auc_encoder=roc_auc(test.label("ctr"), model.predict_proba(test.features)),
    )


def run_lambda_ablation(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
    lambdas: Sequence[float] = (0.0, 0.01, 0.1, 1.0, 10.0),
) -> AblationResult:
    """Sweep the similarity-loss weight ``lambda`` (paper value: 0.1)."""
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rows = []
    for value in lambdas:
        row = _train_and_score(
            world, config, config.tower, value, True, f"lambda={value:g}"
        )
        rows.append(replace_setting(row, f"lambda={value:g}"))
    return AblationResult(name="similarity weight lambda", rows=rows, preset=preset)


def run_embedding_sharing_ablation(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
) -> AblationResult:
    """Shared vs separate generator/encoder profile embeddings."""
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rows = [
        replace_setting(
            _train_and_score(world, config, config.tower,
                             config.lambda_similarity, True, "shared"),
            "shared embeddings",
        ),
        replace_setting(
            _train_and_score(world, config, config.tower,
                             config.lambda_similarity, False, "separate"),
            "separate embeddings",
        ),
    ]
    return AblationResult(name="embedding sharing", rows=rows, preset=preset)


def run_cross_depth_ablation(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
    depths: Sequence[int] = (0, 1, 2, 3),
) -> AblationResult:
    """Cross-network depth sweep (0 = fully connected towers)."""
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rows = []
    for depth in depths:
        tower = replace(config.tower, num_cross_layers=depth)
        row = _train_and_score(
            world, config, tower, config.lambda_similarity, True, f"depth={depth}"
        )
        rows.append(replace_setting(row, f"{depth} cross layers"))
    return AblationResult(name="cross-network depth", rows=rows, preset=preset)


def replace_setting(row: AblationRow, setting: str) -> AblationRow:
    """Return a copy of ``row`` with a human-readable setting label."""
    return AblationRow(
        setting=setting,
        auc_generator=row.auc_generator,
        auc_encoder=row.auc_encoder,
    )
