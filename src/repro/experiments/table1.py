"""Table I — offline item-generation-ability experiment.

For each of GBDT, TNN-FC, TNN-DCN and ATNN, measure test AUC in two
regimes:

* **complete item features** (profiles + statistics) — the ideal baseline;
* **only item profiles** (the cold-start scenario) — item statistics are
  *missing* at serving time, exactly as for a new arrival whose feature
  join against the statistics store comes back empty (statistic columns
  zeroed).

and report the relative performance degradation
``(AUC_profile - AUC_complete) / AUC_complete``.

Every baseline is the production model — trained once on complete
features — then confronted with missing statistics, which is the paper's
deployment scenario.  ATNN is trained once and evaluated through its
encoder path (complete) and its generator path (profile-only, never needed
statistics), exactly as deployed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core import ATNN, ATNNTrainer, TowerConfig, TwoTowerModel, TwoTowerTrainer
from repro.data import GROUP_ITEM_PROFILE, GROUP_ITEM_STAT, GROUP_USER, train_test_split
from repro.data.cold_start import zero_statistics
from repro.data.dataset import InteractionDataset
from repro.data.synthetic import TmallWorld, generate_tmall_world
from repro.experiments.configs import ExperimentPreset, get_preset
from repro.gbdt import GBDTClassifier
from repro.metrics import performance_degradation, roc_auc
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "PAPER_TABLE1"]

# The paper's reported numbers, for side-by-side comparison in reports.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "GBDT": {"profile_only": 0.6149, "complete": 0.6590, "degradation": -0.0669},
    "TNN-FC": {"profile_only": 0.5934, "complete": 0.6048, "degradation": -0.0188},
    "TNN-DCN": {"profile_only": 0.6860, "complete": 0.7169, "degradation": -0.0431},
    "ATNN": {"profile_only": 0.7121, "complete": 0.7124, "degradation": -0.0004},
}


@dataclass
class Table1Row:
    """One model's row of Table I."""

    model: str
    auc_profile_only: float
    auc_complete: float

    @property
    def degradation(self) -> float:
        """Relative AUC loss from missing item statistics."""
        return performance_degradation(self.auc_profile_only, self.auc_complete)


@dataclass
class Table1Result:
    """All rows plus rendering helpers."""

    rows: List[Table1Row]
    preset: str
    title: str = "Table I — item generation ability"

    def row(self, model: str) -> Table1Row:
        """Look up one model's row."""
        for row in self.rows:
            if row.model == model:
                return row
        raise KeyError(f"no row for model {model!r}")

    def render(self) -> str:
        """ASCII table in the paper's Table I layout."""
        headers = [
            "Model",
            "AUC profile-only (cold start)",
            "AUC complete (ideal)",
            "Degradation %",
        ]
        body = [
            [
                row.model,
                row.auc_profile_only,
                row.auc_complete,
                100.0 * row.degradation,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            precision=4,
            title=f"{self.title} (preset={self.preset})",
        )

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly summary keyed by model name."""
        return {
            row.model: {
                "profile_only": row.auc_profile_only,
                "complete": row.auc_complete,
                "degradation": row.degradation,
            }
            for row in self.rows
        }


def _gbdt_aucs(
    train: InteractionDataset,
    test: InteractionDataset,
    seed: int,
) -> Table1Row:
    """Train GBDT on complete features; evaluate with and without stats."""
    groups = (GROUP_USER, GROUP_ITEM_PROFILE, GROUP_ITEM_STAT)
    model = GBDTClassifier(
        n_estimators=60,
        max_depth=6,
        learning_rate=0.15,
        min_samples_leaf=30,
        subsample=0.9,
        random_state=seed,
    )
    model.fit(train.feature_matrix(groups), train.label("ctr"))
    complete = roc_auc(
        test.label("ctr"), model.predict_proba(test.feature_matrix(groups))
    )
    cold = InteractionDataset(
        test.schema, zero_statistics(test.schema, test.features), dict(test.labels)
    )
    profile_only = roc_auc(
        test.label("ctr"), model.predict_proba(cold.feature_matrix(groups))
    )
    return Table1Row("GBDT", profile_only, complete)


def _two_tower_aucs(
    name: str,
    num_cross_layers: int,
    train: InteractionDataset,
    test: InteractionDataset,
    preset: ExperimentPreset,
    seed: int,
) -> Table1Row:
    """Train a TNN baseline on complete features; evaluate both regimes."""
    tower = TowerConfig(
        vector_dim=preset.tower.vector_dim,
        deep_dims=preset.tower.deep_dims,
        head_dims=preset.tower.head_dims,
        num_cross_layers=num_cross_layers,
        dropout=preset.tower.dropout,
    )
    model = TwoTowerModel(
        train.schema,
        tower,
        item_groups=(GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
        rng=np.random.default_rng(derive_seed(seed, name)),
    )
    trainer = TwoTowerTrainer(
        epochs=preset.epochs,
        batch_size=preset.batch_size,
        lr=preset.lr,
        seed=derive_seed(seed, f"{name}-train"),
    )
    trainer.fit(model, train)
    complete = roc_auc(test.label("ctr"), model.predict_proba(test.features))
    profile_only = roc_auc(
        test.label("ctr"),
        model.predict_proba(zero_statistics(test.schema, test.features)),
    )
    return Table1Row(name, profile_only, complete)


def _atnn_aucs(
    train: InteractionDataset,
    test: InteractionDataset,
    preset: ExperimentPreset,
    seed: int,
) -> Table1Row:
    """Train ATNN once; evaluate encoder (complete) and generator paths."""
    model = ATNN(
        train.schema,
        preset.tower,
        rng=np.random.default_rng(derive_seed(seed, "atnn")),
    )
    trainer = ATNNTrainer(
        lambda_similarity=preset.lambda_similarity,
        epochs=preset.epochs,
        batch_size=preset.batch_size,
        lr=preset.lr,
        seed=derive_seed(seed, "atnn-train"),
    )
    trainer.fit(model, train)
    complete = roc_auc(test.label("ctr"), model.predict_proba(test.features))
    profile_only = roc_auc(
        test.label("ctr"), model.predict_proba_cold_start(test.features)
    )
    return Table1Row("ATNN", profile_only, complete)


def run_table1(
    preset: str = "default",
    world: Optional[TmallWorld] = None,
    models: Optional[List[str]] = None,
) -> Table1Result:
    """Reproduce Table I.

    Parameters
    ----------
    preset:
        Size preset name (``smoke`` / ``default`` / ``paper``).
    world:
        Optional pre-generated world (reused across tables by the harness).
    models:
        Restrict to a subset of {"GBDT", "TNN-FC", "TNN-DCN", "ATNN"}.

    Returns
    -------
    Table1Result
        Rows in the paper's order.
    """
    config = get_preset(preset)
    if world is None:
        world = generate_tmall_world(config.tmall)
    rng = np.random.default_rng(derive_seed(config.seed, "table1-split"))
    train, test = train_test_split(world.interactions, 0.2, rng)

    wanted = models if models is not None else ["GBDT", "TNN-FC", "TNN-DCN", "ATNN"]
    unknown = [m for m in wanted if m not in ("GBDT", "TNN-FC", "TNN-DCN", "ATNN")]
    if unknown:
        raise ValueError(f"unknown models: {unknown}")

    rows: List[Table1Row] = []
    for name in wanted:
        if name == "GBDT":
            rows.append(_gbdt_aucs(train, test, config.seed))
        elif name == "TNN-FC":
            rows.append(_two_tower_aucs("TNN-FC", 0, train, test, config, config.seed))
        elif name == "TNN-DCN":
            rows.append(_two_tower_aucs("TNN-DCN", 2, train, test, config, config.seed))
        else:
            rows.append(_atnn_aucs(train, test, config, config.seed))
    return Table1Result(rows=rows, preset=preset)
