"""Shared experiment configuration presets.

Three size presets are provided:

* ``smoke``  — seconds; used by the integration tests,
* ``default`` — a few minutes for the complete table; used by the
  benchmark harness,
* ``paper`` — the paper's exact network dimensions on the largest world
  that is still laptop-feasible (hours); for high-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.towers import TowerConfig
from repro.data.synthetic.eleme import ElemeConfig
from repro.data.synthetic.tmall import TmallConfig

__all__ = ["ExperimentPreset", "get_preset", "PRESETS"]


@dataclass(frozen=True)
class ExperimentPreset:
    """Everything a table pipeline needs: world sizes, tower dims, training."""

    name: str
    tmall: TmallConfig
    eleme: ElemeConfig
    tower: TowerConfig
    epochs: int
    batch_size: int
    lr: float
    # The food-delivery dataset is much smaller than the CTR dataset, so
    # its trainers get their own budget (more epochs, smaller batches).
    eleme_epochs: int = 8
    eleme_batch_size: int = 128
    lambda_similarity: float = 0.1
    lambda_vppv: float = 100.0
    lambda_similarity_multitask: float = 10.0
    seed: int = 0


_SMOKE = ExperimentPreset(
    name="smoke",
    tmall=TmallConfig(
        n_users=600, n_items=900, n_new_items=300, n_interactions=18_000
    ),
    eleme=ElemeConfig(
        n_restaurants=600, n_new_restaurants=250, samples_per_restaurant=5
    ),
    tower=TowerConfig(
        vector_dim=16, deep_dims=(32, 16), head_dims=(32,), num_cross_layers=2
    ),
    epochs=2,
    batch_size=512,
    lr=2e-3,
    eleme_epochs=8,
    eleme_batch_size=128,
)

_DEFAULT = ExperimentPreset(
    name="default",
    tmall=TmallConfig(
        n_users=3000, n_items=4000, n_new_items=1500, n_interactions=120_000
    ),
    eleme=ElemeConfig(
        n_restaurants=3000, n_new_restaurants=1200, samples_per_restaurant=8
    ),
    tower=TowerConfig(
        vector_dim=32, deep_dims=(64, 32), head_dims=(64,), num_cross_layers=2
    ),
    epochs=3,
    batch_size=512,
    lr=1.5e-3,
    eleme_epochs=8,
    eleme_batch_size=256,
)

_PAPER = ExperimentPreset(
    name="paper",
    tmall=TmallConfig(
        n_users=20_000, n_items=40_000, n_new_items=10_000, n_interactions=1_000_000
    ),
    eleme=ElemeConfig(
        n_restaurants=20_000, n_new_restaurants=8_000, samples_per_restaurant=10
    ),
    tower=TowerConfig.paper(),
    epochs=3,
    batch_size=1024,
    lr=1e-3,
    eleme_epochs=8,
    eleme_batch_size=512,
)

PRESETS = {"smoke": _SMOKE, "default": _DEFAULT, "paper": _PAPER}


def get_preset(name: str) -> ExperimentPreset:
    """Look up a preset by name.

    Raises
    ------
    ValueError
        On an unknown preset name.
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
