"""Gradient boosting ensembles over histogram trees.

Implements the GBDT baseline of the paper's Table I from scratch:
second-order boosting with shrinkage, row subsampling and optional early
stopping on a validation set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.gbdt.histogram import BinMapper
from repro.gbdt.losses import LogisticLoss, SquaredLoss
from repro.gbdt.tree import RegressionTree

__all__ = ["GBDTClassifier", "GBDTRegressor"]


class _BaseGBDT:
    """Shared fitting machinery for the classifier and regressor."""

    def __init__(
        self,
        loss,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        subsample: float = 1.0,
        reg_lambda: float = 1.0,
        max_bins: int = 64,
        early_stopping_rounds: Optional[int] = None,
        random_state: int = 0,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self._loss = loss
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.random_state = random_state

        self.trees_: List[RegressionTree] = []
        self.bin_mapper_: Optional[BinMapper] = None
        self.initial_score_: float = 0.0
        self.train_losses_: List[float] = []
        self.valid_losses_: List[float] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "_BaseGBDT":
        """Fit the ensemble; optionally early-stop on ``eval_set``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"y must be 1-D with {X.shape[0]} entries, got shape {y.shape}"
            )

        rng = np.random.default_rng(self.random_state)
        self.bin_mapper_ = BinMapper(self.max_bins)
        binned = self.bin_mapper_.fit_transform(X)
        n_bins = self.bin_mapper_.n_bins_

        self.initial_score_ = self._loss.initial_score(y)
        scores = np.full(X.shape[0], self.initial_score_)

        valid_binned = valid_scores = valid_y = None
        if eval_set is not None:
            valid_X, valid_y = eval_set
            valid_y = np.asarray(valid_y, dtype=np.float64)
            valid_binned = self.bin_mapper_.transform(np.asarray(valid_X, dtype=np.float64))
            valid_scores = np.full(valid_binned.shape[0], self.initial_score_)

        self.trees_ = []
        self.train_losses_ = []
        self.valid_losses_ = []
        best_valid = np.inf
        best_round = 0

        for round_index in range(self.n_estimators):
            grad, hess = self._loss.gradients(scores, y)
            if self.subsample < 1.0:
                sampled = rng.random(X.shape[0]) < self.subsample
                # Zero-weight the out-of-bag rows instead of re-indexing.
                grad = np.where(sampled, grad, 0.0)
                hess = np.where(sampled, hess, 0.0)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit(binned, grad, hess, n_bins)
            self.trees_.append(tree)
            scores += self.learning_rate * tree.predict(binned)
            self.train_losses_.append(self._mean_loss(scores, y))

            if valid_binned is not None:
                valid_scores += self.learning_rate * tree.predict(valid_binned)
                valid_loss = self._mean_loss(valid_scores, valid_y)
                self.valid_losses_.append(valid_loss)
                if valid_loss < best_valid - 1e-9:
                    best_valid = valid_loss
                    best_round = round_index
                elif (
                    self.early_stopping_rounds is not None
                    and round_index - best_round >= self.early_stopping_rounds
                ):
                    self.trees_ = self.trees_[: best_round + 1]
                    break
        return self

    def _mean_loss(self, scores: np.ndarray, targets: np.ndarray) -> float:
        if self._loss is LogisticLoss:
            probabilities = np.clip(LogisticLoss.transform(scores), 1e-12, 1 - 1e-12)
            return float(
                -np.mean(
                    targets * np.log(probabilities)
                    + (1 - targets) * np.log(1 - probabilities)
                )
            )
        return float(np.mean((scores - targets) ** 2))

    # ------------------------------------------------------------------
    def _raw_predict(self, X: np.ndarray) -> np.ndarray:
        if self.bin_mapper_ is None:
            raise RuntimeError("model is not fitted")
        binned = self.bin_mapper_.transform(np.asarray(X, dtype=np.float64))
        scores = np.full(binned.shape[0], self.initial_score_)
        for tree in self.trees_:
            scores += self.learning_rate * tree.predict(binned)
        return scores

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Gain-based importances, normalised to sum to one."""
        gains = np.zeros(n_features)
        for tree in self.trees_:
            gains += tree.feature_gains(n_features)
        total = gains.sum()
        return gains / total if total > 0 else gains


class GBDTClassifier(_BaseGBDT):
    """Binary classifier with logistic loss (the paper's GBDT baseline)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(LogisticLoss, **kwargs)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return P(y=1) for each row."""
        return LogisticLoss.transform(self._raw_predict(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return hard 0/1 labels at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)


class GBDTRegressor(_BaseGBDT):
    """Regressor with squared loss."""

    def __init__(self, **kwargs) -> None:
        super().__init__(SquaredLoss, **kwargs)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return continuous predictions."""
        return self._raw_predict(X)
