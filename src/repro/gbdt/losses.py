"""First/second-order loss derivatives for gradient boosting."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["LogisticLoss", "SquaredLoss"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LogisticLoss:
    """Binary cross-entropy on raw scores (log-odds)."""

    @staticmethod
    def initial_score(targets: np.ndarray) -> float:
        """Log-odds of the base rate — the optimal constant model."""
        rate = float(np.clip(targets.mean(), 1e-6, 1 - 1e-6))
        return float(np.log(rate / (1.0 - rate)))

    @staticmethod
    def gradients(scores: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (gradient, hessian) of the loss w.r.t. scores."""
        probabilities = _sigmoid(scores)
        grad = probabilities - targets
        hess = np.maximum(probabilities * (1.0 - probabilities), 1e-12)
        return grad, hess

    @staticmethod
    def transform(scores: np.ndarray) -> np.ndarray:
        """Map raw scores to probabilities."""
        return _sigmoid(scores)


class SquaredLoss:
    """Mean squared error on raw scores."""

    @staticmethod
    def initial_score(targets: np.ndarray) -> float:
        """The target mean — the optimal constant model."""
        return float(targets.mean())

    @staticmethod
    def gradients(scores: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (gradient, hessian) of 0.5*(s-y)^2."""
        return scores - targets, np.ones_like(scores)

    @staticmethod
    def transform(scores: np.ndarray) -> np.ndarray:
        """Identity for regression."""
        return scores
