"""Regression tree with second-order histogram split finding.

Each tree fits the Newton step of the boosting objective: for samples with
gradients ``g`` and hessians ``h``, a leaf's optimal value is
``-sum(g) / (sum(h) + reg_lambda)`` and a split's gain is the increase in
``sum(g)^2 / (sum(h) + reg_lambda)`` across children — the classic
XGBoost-style formulation, computed on binned features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["TreeNode", "RegressionTree"]


@dataclass
class TreeNode:
    """One node of a fitted tree; leaves have ``feature == -1``."""

    feature: int = -1
    threshold_bin: int = 0
    value: float = 0.0
    left: int = -1
    right: int = -1
    gain: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass
class _BuildTask:
    """Work item for the depth-first tree builder."""

    node_index: int
    sample_indices: np.ndarray
    depth: int


class RegressionTree:
    """A single gradient-boosting tree over binned features.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root is depth 0).
    min_samples_leaf:
        Minimum samples required in each child for a split to be valid.
    min_gain:
        Minimum gain for a split to be kept.
    reg_lambda:
        L2 regularisation on leaf values.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        min_gain: float = 1e-6,
        reg_lambda: float = 1.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.reg_lambda = reg_lambda
        self.nodes: List[TreeNode] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        n_bins: np.ndarray,
    ) -> "RegressionTree":
        """Grow the tree on binned features with per-sample grad/hess."""
        binned = np.ascontiguousarray(binned)
        if binned.ndim != 2:
            raise ValueError(f"binned features must be 2-D, got {binned.shape}")
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if gradients.shape != (binned.shape[0],) or hessians.shape != gradients.shape:
            raise ValueError("gradients/hessians must be 1-D and match sample count")

        self.nodes = [TreeNode()]
        stack = [_BuildTask(0, np.arange(binned.shape[0]), 0)]
        while stack:
            task = stack.pop()
            left_task, right_task = self._grow(task, binned, gradients, hessians, n_bins)
            if left_task is not None:
                stack.append(left_task)
                stack.append(right_task)
        return self

    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.reg_lambda)

    def _score(self, grad_sum, hess_sum):
        """Newton objective reduction term G^2 / (H + lambda)."""
        return grad_sum * grad_sum / (hess_sum + self.reg_lambda)

    def _grow(self, task, binned, gradients, hessians, n_bins):
        node = self.nodes[task.node_index]
        indices = task.sample_indices
        grad = gradients[indices]
        hess = hessians[indices]
        grad_total = float(grad.sum())
        hess_total = float(hess.sum())
        node.n_samples = indices.size
        node.value = self._leaf_value(grad_total, hess_total)

        if task.depth >= self.max_depth or indices.size < 2 * self.min_samples_leaf:
            return None, None

        best_gain = self.min_gain
        best_feature = -1
        best_bin = -1
        parent_score = self._score(grad_total, hess_total)
        rows = binned[indices]

        for feature in range(binned.shape[1]):
            bins = int(n_bins[feature])
            if bins < 2:
                continue
            codes = rows[:, feature]
            grad_hist = np.bincount(codes, weights=grad, minlength=bins)
            hess_hist = np.bincount(codes, weights=hess, minlength=bins)
            count_hist = np.bincount(codes, minlength=bins)
            # Cumulative sums give all "<= bin b" left partitions at once.
            grad_left = np.cumsum(grad_hist)[:-1]
            hess_left = np.cumsum(hess_hist)[:-1]
            count_left = np.cumsum(count_hist)[:-1]
            grad_right = grad_total - grad_left
            hess_right = hess_total - hess_left
            count_right = indices.size - count_left
            valid = (count_left >= self.min_samples_leaf) & (
                count_right >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            gains = (
                self._score(grad_left, hess_left)
                + self._score(grad_right, hess_right)
                - parent_score
            )
            gains[~valid] = -np.inf
            split_bin = int(np.argmax(gains))
            gain = float(gains[split_bin])
            if gain > best_gain:
                best_gain = gain
                best_feature = feature
                best_bin = split_bin

        if best_feature < 0:
            return None, None

        go_left = rows[:, best_feature] <= best_bin
        left_indices = indices[go_left]
        right_indices = indices[~go_left]

        node.feature = best_feature
        node.threshold_bin = best_bin
        node.gain = best_gain
        node.left = len(self.nodes)
        self.nodes.append(TreeNode())
        node.right = len(self.nodes)
        self.nodes.append(TreeNode())

        return (
            _BuildTask(node.left, left_indices, task.depth + 1),
            _BuildTask(node.right, right_indices, task.depth + 1),
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Return leaf values for every row of binned features."""
        if not self.nodes:
            raise RuntimeError("tree is not fitted")
        binned = np.asarray(binned)
        active = np.zeros(binned.shape[0], dtype=np.int64)
        out = np.empty(binned.shape[0], dtype=np.float64)
        # Vectorised level traversal: advance all rows until all reach leaves.
        pending = np.arange(binned.shape[0])
        while pending.size:
            node_ids = active[pending]
            features = np.array([self.nodes[i].feature for i in node_ids])
            is_leaf = features < 0
            leaf_rows = pending[is_leaf]
            if leaf_rows.size:
                out[leaf_rows] = [self.nodes[i].value for i in active[leaf_rows]]
            pending = pending[~is_leaf]
            if not pending.size:
                break
            node_ids = active[pending]
            features = features[~is_leaf]
            thresholds = np.array(
                [self.nodes[i].threshold_bin for i in node_ids]
            )
            values = binned[pending, features]
            go_left = values <= thresholds
            lefts = np.array([self.nodes[i].left for i in node_ids])
            rights = np.array([self.nodes[i].right for i in node_ids])
            active[pending] = np.where(go_left, lefts, rights)
        return out

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for node in self.nodes if node.is_leaf)

    def feature_gains(self, n_features: int) -> np.ndarray:
        """Total split gain attributed to each feature."""
        gains = np.zeros(n_features)
        for node in self.nodes:
            if not node.is_leaf:
                gains[node.feature] += node.gain
        return gains
