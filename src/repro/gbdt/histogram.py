"""Feature binning for histogram-based gradient boosting.

Continuous features are quantised into at most ``max_bins`` buckets using
quantile edges estimated on the training set; categorical codes are passed
through when their cardinality already fits.  Binning is what makes split
finding O(bins) instead of O(samples) per feature and mirrors what modern
GBDT libraries (LightGBM/XGBoost-hist) do.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["BinMapper"]


class BinMapper:
    """Learns per-feature bin edges and maps matrices to small-int codes.

    Parameters
    ----------
    max_bins:
        Upper bound on bins per feature (including one reserved bucket for
        values above the last edge).  Must fit in ``uint8`` (<= 256).
    """

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}")
        self.max_bins = max_bins
        self.bin_edges_: Optional[List[np.ndarray]] = None
        self.n_bins_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Estimate quantile bin edges for every column of ``X``."""
        X = self._check_matrix(X)
        edges: List[np.ndarray] = []
        n_bins = np.zeros(X.shape[1], dtype=np.int64)
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for column in range(X.shape[1]):
            values = X[:, column]
            finite = values[np.isfinite(values)]
            if finite.size == 0:
                column_edges = np.array([])
            else:
                column_edges = np.unique(np.quantile(finite, quantiles))
            edges.append(column_edges)
            n_bins[column] = len(column_edges) + 1
        self.bin_edges_ = edges
        self.n_bins_ = n_bins
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` to bin codes with the edges learned by :meth:`fit`."""
        if self.bin_edges_ is None:
            raise RuntimeError("BinMapper must be fitted before transform")
        X = self._check_matrix(X)
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {X.shape[1]}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for column, column_edges in enumerate(self.bin_edges_):
            if column_edges.size == 0:
                codes[:, column] = 0
            else:
                codes[:, column] = np.searchsorted(
                    column_edges, X[:, column], side="right"
                ).astype(np.uint8)
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one pass."""
        return self.fit(X).transform(X)

    @staticmethod
    def _check_matrix(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X
