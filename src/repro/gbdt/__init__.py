"""From-scratch histogram gradient boosting (the paper's GBDT baseline)."""

from repro.gbdt.boosting import GBDTClassifier, GBDTRegressor
from repro.gbdt.histogram import BinMapper
from repro.gbdt.losses import LogisticLoss, SquaredLoss
from repro.gbdt.tree import RegressionTree, TreeNode

__all__ = [
    "GBDTClassifier",
    "GBDTRegressor",
    "BinMapper",
    "LogisticLoss",
    "SquaredLoss",
    "RegressionTree",
    "TreeNode",
]
