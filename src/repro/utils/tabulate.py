"""Minimal ASCII table rendering for benchmark/experiment reports.

The benchmark harness prints each reproduced table in the same row/column
layout as the paper; this module renders those tables without external
dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_value"]

Cell = Union[str, float, int, None]


def format_value(value: Cell, precision: int = 4) -> str:
    """Render one cell: floats at fixed precision, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render rows as a boxed ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` cells.
    precision:
        Decimal places used for floats.
    title:
        Optional title line printed above the table.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [format_value(cell, precision) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered.append(cells)

    widths = [max(len(row[col]) for row in rendered) for col in range(len(headers))]
    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def render_row(cells: List[str]) -> str:
        padded = [f" {cell.ljust(width)} " for cell, width in zip(cells, widths)]
        return "|" + "|".join(padded) + "|"

    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(rendered[0]))
    lines.append(separator)
    for cells in rendered[1:]:
        lines.append(render_row(cells))
    lines.append(separator)
    return "\n".join(lines)
