"""Argument validation helpers shared across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "require_positive",
    "require_in_range",
    "require_probability",
    "require_same_length",
    "as_1d_float",
    "as_1d_int",
]


def require_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")


def require_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a valid probability."""
    require_in_range(value, 0.0, 1.0, name)


def require_same_length(a: Sequence, b: Sequence, names: str = "inputs") -> None:
    """Raise ``ValueError`` unless two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(f"{names} must have equal length, got {len(a)} vs {len(b)}")


def as_1d_float(values, name: str) -> np.ndarray:
    """Coerce to a 1-D float array, raising a clear error on failure."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    return array


def as_1d_int(values, name: str) -> np.ndarray:
    """Coerce to a 1-D integer array, raising a clear error on failure."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    if array.dtype.kind not in "iu":
        if not np.allclose(array, np.round(array)):
            raise ValueError(f"{name} must contain integers")
        array = array.astype(np.int64)
    return array
