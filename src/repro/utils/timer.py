"""Wall-clock timing helpers for the complexity benchmarks."""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Timer", "time_callable"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Return the minimum elapsed time of ``fn()`` over ``repeats`` runs."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
