"""Wall-clock timing helpers for the complexity benchmarks."""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.obs.metrics import get_active_registry

__all__ = ["Timer", "time_callable"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    The timer is safely re-enterable — each ``with`` block overwrites
    :attr:`elapsed` — and exiting a timer that was never entered is a
    no-op rather than an error.  A *named* timer additionally reports
    each measurement into the active metrics registry (when one is
    active) as the histogram ``timer.<name>``.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0
    True
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._start is None:  # exited without (or after) entering
            return
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        if self.name:
            registry = get_active_registry()
            if registry is not None:
                registry.histogram(f"timer.{self.name}").observe(self.elapsed)


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Return the minimum elapsed time of ``fn()`` over ``repeats`` runs."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
