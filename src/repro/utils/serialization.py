"""Model and artifact (de)serialization.

Model weights are stored as ``.npz`` archives of the flat state dict;
experiment results are stored as JSON with numpy-aware encoding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.nn.module import Module

__all__ = ["save_model", "load_model", "save_json", "load_json"]

PathLike = Union[str, Path]


def save_model(module: Module, path: PathLike) -> None:
    """Persist a module's weights to a ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)


def load_model(module: Module, path: PathLike) -> None:
    """Load weights saved by :func:`save_model` into ``module`` in place."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no model checkpoint at {path}")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(data: Dict[str, Any], path: PathLike) -> None:
    """Write a JSON document, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, cls=_NumpyEncoder)
        handle.write("\n")


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON document written by :func:`save_json`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
