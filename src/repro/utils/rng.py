"""Seeded random-number-generator management.

Every stochastic component of the reproduction (data synthesis, weight
initialisation, dropout, expert simulation) draws from an explicitly seeded
``numpy.random.Generator``.  :func:`spawn` derives independent child
generators from a parent seed so that changing, say, the number of training
epochs never silently reshuffles the synthetic dataset.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed"]


def make_rng(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def derive_seed(seed: int, label: str) -> int:
    """Deterministically derive a child seed from a parent seed and a label.

    Uses ``numpy``'s SeedSequence entropy pooling, keyed on the label bytes,
    so distinct labels yield statistically independent streams.
    """
    label_key = [byte for byte in label.encode("utf-8")]
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=tuple(label_key))
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def spawn(seed: int, labels: List[str]) -> List[np.random.Generator]:
    """Create one independent generator per label from a single seed."""
    return [make_rng(derive_seed(seed, label)) for label in labels]
