"""Shared utilities: RNG management, timing, tables, serialization."""

from repro.utils.rng import derive_seed, make_rng, spawn
from repro.utils.serialization import load_json, load_model, save_json, save_model
from repro.utils.tabulate import format_table, format_value
from repro.utils.timer import Timer, time_callable

__all__ = [
    "derive_seed",
    "make_rng",
    "spawn",
    "load_json",
    "load_model",
    "save_json",
    "save_model",
    "format_table",
    "format_value",
    "Timer",
    "time_callable",
]
