"""Synthetic Tmall-like e-commerce world.

The paper evaluates on a proprietary Tmall dataset (23.1M items, 4M users,
40M interactions).  This module builds a laptop-scale synthetic substitute
that preserves the *structural* properties ATNN's results depend on:

1. **Item statistics are the easy signal.**  Each released item carries
   engagement statistics (PV, UV, historical CTR, cart/favourite/purchase
   rates) that are noisy observations of its realised popularity.  Models
   with access to them predict CTR well; removing them hurts.
2. **Item profiles determine quality only through feature crosses.**  The
   latent item quality is a product/cross function of profile features
   (brand tier x seller reputation, image x title quality, price fit), so a
   plain fully connected tower under-uses profiles while a cross-network
   tower (DCN) — or a generator distilled from a statistics-aware teacher —
   can recover them.
3. **Personalised clicks follow a two-tower geometry.**  A click on item
   ``j`` by user ``u`` is Bernoulli of a logistic function of
   ``<u_latent, v_latent> + quality``, the exact structure a two-tower model
   can capture.
4. **New arrivals are items whose statistics never existed**, with held-out
   ground-truth popularity used only by the behaviour simulator.

The generated schema mirrors the paper's feature groups (user profiles,
item profiles, item statistics) at reduced width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import FeatureTable, InteractionDataset
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
    SequenceFeature,
)
from repro.data.synthetic.common import noisy, sigmoid, standardize
from repro.utils.rng import derive_seed

__all__ = ["TmallConfig", "TmallWorld", "generate_tmall_world"]


@dataclass(frozen=True)
class TmallConfig:
    """Size and noise knobs of the synthetic Tmall world.

    Defaults are sized so the full Table I pipeline (four models) runs in a
    few minutes on a laptop; scale up for higher-fidelity runs.
    """

    n_users: int = 3000
    n_items: int = 4000
    n_new_items: int = 1500
    n_interactions: int = 120_000
    n_categories: int = 16
    n_subcategories: int = 48
    n_brands: int = 120
    n_sellers: int = 200
    latent_dim: int = 6
    n_user_segments: int = 8
    # Click-model coefficients: logit = bias + affinity_w * <u, v> + quality_w * q.
    # Kept deliberately moderate so single-click labels are a *noisy* signal
    # (paper-level AUCs in the 0.6-0.75 band): aggregated item statistics
    # then carry real denoised information, which is the regime where the
    # adversarial distillation of ATNN pays off.
    click_bias: float = -1.1
    affinity_weight: float = 0.8
    quality_weight: float = 1.0
    # Observation-noise levels.  Statistic noise is sized so that item
    # statistics are clearly informative but not oracle-grade; it controls
    # how hard complete-feature models lean on them and therefore the size
    # of the cold-start degradation in Table I.
    profile_noise: float = 0.25
    stat_noise: float = 0.45
    preference_proxy_noise: float = 0.6
    seed: int = 7

    def __post_init__(self) -> None:
        for name in (
            "n_users",
            "n_items",
            "n_new_items",
            "n_interactions",
            "n_categories",
            "n_subcategories",
            "n_brands",
            "n_sellers",
            "latent_dim",
            "n_user_segments",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")


def _price_buckets(log_price: np.ndarray, n_buckets: int = 8) -> np.ndarray:
    """Quantile-bucket log prices into ``n_buckets`` categorical codes."""
    edges = np.quantile(log_price, np.linspace(0, 1, n_buckets + 1)[1:-1])
    return np.searchsorted(edges, log_price, side="right").astype(np.int64)


class TmallWorld:
    """A fully generated synthetic e-commerce world.

    Class attribute ``PREF_LIST_LEN`` is the padded length of the
    multi-valued user preference-category feature.

    Attributes
    ----------
    config:
        The generating configuration.
    schema:
        Feature schema for all tower inputs.
    users:
        :class:`FeatureTable` of user features (one row per user).
    items:
        :class:`FeatureTable` of released items (profiles + statistics).
    new_items:
        :class:`FeatureTable` of new arrivals (profiles only; statistic
        columns are present but zeroed, mirroring a serving-time feature
        join against an empty statistics store).
    interactions:
        :class:`InteractionDataset` of labelled (user, item) samples.
    user_latents / item_latents / new_item_latents:
        Ground-truth latent vectors (hidden from models; used by the
        behaviour simulator and for diagnostics).
    item_quality / new_item_quality:
        Ground-truth intrinsic quality scalars.
    new_item_popularity:
        Ground-truth popularity of each new arrival — the mean click
        probability over the user population.  This is the quantity the
        paper ranks by (and what the behaviour simulator consumes).
    """

    PREF_LIST_LEN = 4

    def __init__(self, config: TmallConfig) -> None:
        self.config = config
        self._generate()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate(self) -> None:
        cfg = self.config
        rng_users = np.random.default_rng(derive_seed(cfg.seed, "users"))
        rng_items = np.random.default_rng(derive_seed(cfg.seed, "items"))
        rng_new = np.random.default_rng(derive_seed(cfg.seed, "new_items"))
        rng_inter = np.random.default_rng(derive_seed(cfg.seed, "interactions"))
        rng_stats = np.random.default_rng(derive_seed(cfg.seed, "statistics"))

        self._category_latents = rng_items.normal(
            0.0, 1.0, size=(cfg.n_categories, cfg.latent_dim)
        )
        self._brand_tier = np.clip(
            rng_items.normal(0.5, 0.22, size=cfg.n_brands), 0.0, 1.0
        )
        self._brand_latents = rng_items.normal(
            0.0, 0.6, size=(cfg.n_brands, cfg.latent_dim)
        )
        self._seller_reputation = np.clip(
            rng_items.normal(0.6, 0.2, size=cfg.n_sellers), 0.0, 1.0
        )
        self._category_log_price = rng_items.normal(3.5, 0.6, size=cfg.n_categories)

        self._generate_users(rng_users)
        items, item_latents, item_quality, item_log_price = self._generate_items(
            rng_items, cfg.n_items, include_stats=True, stats_rng=rng_stats
        )
        self.items = items
        self.item_latents = item_latents
        self.item_quality = item_quality
        self._item_log_price = item_log_price

        new_items, new_latents, new_quality, new_log_price = self._generate_items(
            rng_new, cfg.n_new_items, include_stats=False, stats_rng=None
        )
        self.new_items = new_items
        self.new_item_latents = new_latents
        self.new_item_quality = new_quality
        self.new_item_prices = np.exp(new_log_price)

        self.schema = self._build_schema()
        self.interactions = self._generate_interactions(rng_inter)
        self.new_item_popularity = self.true_popularity(new_latents, new_quality)
        self.item_popularity = self.true_popularity(item_latents, item_quality)

    # ------------------------------------------------------------------
    def _generate_users(self, rng: np.random.Generator) -> None:
        cfg = self.config
        segment_centroids = rng.normal(
            0.0, 1.0, size=(cfg.n_user_segments, cfg.latent_dim)
        )
        segments = rng.integers(0, cfg.n_user_segments, size=cfg.n_users)
        latents = segment_centroids[segments] + rng.normal(
            0.0, 0.5, size=(cfg.n_users, cfg.latent_dim)
        )
        self.user_latents = latents
        self.user_segments = segments

        activity = np.clip(rng.gamma(2.0, 0.5, size=cfg.n_users), 0.05, None)
        self.user_activity = activity / activity.sum()

        # Observable profile columns.  The "preference proxies" are noisy
        # views of the first latent coordinates — the paper's user profiles
        # include purchase preferences and power ratings, which play the
        # same role of partially revealing taste.
        n_proxies = min(4, cfg.latent_dim)
        proxies = noisy(latents[:, :n_proxies], cfg.preference_proxy_noise, rng)
        # Category affinities drive both the single top preference and the
        # multi-valued preference list (the paper's "purchase preference"
        # profile family).
        affinities = latents @ self._category_latents.T  # (users, categories)
        pref_category = affinities.argmax(axis=1).astype(np.int64)
        top_categories = np.argsort(affinities, axis=1)[:, ::-1][
            :, : self.PREF_LIST_LEN
        ].astype(np.int64)
        list_lengths = rng.integers(2, self.PREF_LIST_LEN + 1, size=cfg.n_users)
        pref_mask = (
            np.arange(self.PREF_LIST_LEN)[None, :] < list_lengths[:, None]
        ).astype(np.float64)
        columns: Dict[str, np.ndarray] = {
            "user_id": np.arange(cfg.n_users, dtype=np.int64),
            "user_gender": rng.integers(0, 3, size=cfg.n_users),
            "user_age_bucket": rng.integers(0, 7, size=cfg.n_users),
            "user_occupation": rng.integers(0, 12, size=cfg.n_users),
            "user_city_tier": rng.integers(0, 5, size=cfg.n_users),
            "user_pref_category": pref_category,
            "user_power_rating": np.clip(
                (standardize(self.user_activity) * 1.5 + 3.5).astype(np.int64), 0, 7
            ),
            "user_activity": standardize(np.log(self.user_activity)),
            "user_price_sensitivity": standardize(rng.normal(size=cfg.n_users)),
        }
        for proxy_index in range(n_proxies):
            columns[f"user_pref_proxy_{proxy_index}"] = standardize(
                proxies[:, proxy_index]
            )
        columns["user_pref_categories"] = top_categories
        columns["user_pref_categories__mask"] = pref_mask
        self.users = FeatureTable(columns)
        self._n_user_proxies = n_proxies

    # ------------------------------------------------------------------
    def _generate_items(
        self,
        rng: np.random.Generator,
        n_items: int,
        include_stats: bool,
        stats_rng: Optional[np.random.Generator],
    ) -> Tuple[FeatureTable, np.ndarray, np.ndarray, np.ndarray]:
        cfg = self.config
        category = rng.integers(0, cfg.n_categories, size=n_items)
        subcategory = (
            category * (cfg.n_subcategories // cfg.n_categories)
            + rng.integers(0, max(cfg.n_subcategories // cfg.n_categories, 1), size=n_items)
        ) % cfg.n_subcategories
        brand = rng.integers(0, cfg.n_brands, size=n_items)
        seller = rng.integers(0, cfg.n_sellers, size=n_items)

        log_price = self._category_log_price[category] + rng.normal(
            0.0, 0.5, size=n_items
        )
        relative_price = log_price - self._category_log_price[category]
        title_quality = np.clip(rng.beta(3, 2, size=n_items), 0.0, 1.0)
        image_quality = np.clip(rng.beta(3, 2, size=n_items), 0.0, 1.0)
        shipping_speed = np.clip(rng.beta(4, 2, size=n_items), 0.0, 1.0)
        brand_tier = self._brand_tier[brand]
        seller_rep = self._seller_reputation[seller]

        # Ground-truth intrinsic quality: a *crossed* function of profile
        # features.  The dominant term is brand_tier x seller_reputation —
        # quantities only reachable through the high-cardinality brand and
        # seller ids — which is what makes embedding towers (and the
        # adversarially distilled generator) matter and keeps raw-id-code
        # learners (GBDT) weak on profiles alone.
        quality_raw = (
            2.8 * brand_tier * seller_rep
            + 0.8 * image_quality * title_quality
            - 0.6 * relative_price ** 2
            + 0.6 * shipping_speed * seller_rep
            + 0.3 * brand_tier
            + rng.normal(0.0, 0.15, size=n_items)
        )
        quality = standardize(quality_raw)

        latents = (
            0.7 * self._category_latents[category]
            + self._brand_latents[brand]
            + rng.normal(0.0, 0.4, size=(n_items, cfg.latent_dim))
        )

        # Brand tier and seller reputation are *not* exposed as numeric
        # columns: like the real platform, that signal is only reachable
        # through the high-cardinality brand/seller ids.  Embedding-based
        # towers can learn per-id representations; the GBDT baseline sees
        # raw id codes (which split poorly), reproducing its weak
        # profile-only behaviour in the paper's Table I.
        columns: Dict[str, np.ndarray] = {
            "item_category": category,
            "item_subcategory": subcategory,
            "item_brand": brand,
            "item_seller": seller,
            "item_price_bucket": _price_buckets(log_price),
            "item_log_price": standardize(noisy(log_price, cfg.profile_noise, rng)),
            "item_relative_price": standardize(
                noisy(relative_price, cfg.profile_noise, rng)
            ),
            "item_title_quality": noisy(title_quality, cfg.profile_noise, rng),
            "item_image_quality": noisy(image_quality, cfg.profile_noise, rng),
            "item_shipping_speed": noisy(shipping_speed, cfg.profile_noise, rng),
        }

        stat_columns = self._statistic_columns(
            n_items, latents, quality, stats_rng if include_stats else None
        )
        columns.update(stat_columns)
        return FeatureTable(columns), latents, quality, log_price

    # ------------------------------------------------------------------
    def _statistic_columns(
        self,
        n_items: int,
        latents: np.ndarray,
        quality: np.ndarray,
        rng: Optional[np.random.Generator],
    ) -> Dict[str, np.ndarray]:
        """Engagement statistics for released items (zeros for new arrivals).

        Statistics are noisy transforms of realised popularity — the mean
        click probability over the user population — plus exposure effects,
        matching the paper's PV / UV / behaviour-count feature family.
        """
        names = [
            "stat_log_pv",
            "stat_log_uv",
            "stat_hist_ctr",
            "stat_cart_rate",
            "stat_fav_rate",
            "stat_buy_rate",
            "stat_seller_log_pv",
            "stat_category_ctr",
        ]
        if rng is None:
            return {name: np.zeros(n_items) for name in names}

        cfg = self.config
        popularity = self.true_popularity(latents, quality)
        exposure = rng.lognormal(mean=5.0, sigma=1.0, size=n_items)
        pv = exposure * (0.25 + popularity)
        uv = pv * np.clip(rng.beta(6, 3, size=n_items), 0.2, 1.0)
        hist_ctr = np.clip(noisy(popularity, cfg.stat_noise * 0.5, rng), 1e-4, 1.0)
        cart_rate = np.clip(noisy(0.30 * popularity, cfg.stat_noise * 0.2, rng), 0, 1)
        fav_rate = np.clip(noisy(0.20 * popularity, cfg.stat_noise * 0.2, rng), 0, 1)
        buy_rate = np.clip(noisy(0.10 * popularity, cfg.stat_noise * 0.1, rng), 0, 1)
        seller_pv = rng.lognormal(mean=7.0, sigma=0.8, size=n_items)
        category_ctr = np.clip(
            noisy(np.full(n_items, popularity.mean()), cfg.stat_noise * 0.3, rng),
            1e-4,
            1.0,
        )
        return {
            "stat_log_pv": standardize(np.log1p(pv)),
            "stat_log_uv": standardize(np.log1p(uv)),
            "stat_hist_ctr": standardize(hist_ctr),
            "stat_cart_rate": standardize(cart_rate),
            "stat_fav_rate": standardize(fav_rate),
            "stat_buy_rate": standardize(buy_rate),
            "stat_seller_log_pv": standardize(np.log1p(seller_pv)),
            "stat_category_ctr": standardize(category_ctr),
        }

    # ------------------------------------------------------------------
    def true_popularity(self, latents: np.ndarray, quality: np.ndarray) -> np.ndarray:
        """Ground-truth popularity: mean click probability over all users."""
        cfg = self.config
        logits = (
            cfg.click_bias
            + cfg.affinity_weight * latents @ self.user_latents.T / np.sqrt(cfg.latent_dim)
            + cfg.quality_weight * quality[:, None]
        )
        return sigmoid(logits).mean(axis=1)

    def click_probability(self, user_indices: np.ndarray, item_indices: np.ndarray,
                          latents: np.ndarray, quality: np.ndarray) -> np.ndarray:
        """Per-pair ground-truth click probability."""
        cfg = self.config
        affinity = np.einsum(
            "ij,ij->i",
            self.user_latents[user_indices],
            latents[item_indices],
        ) / np.sqrt(cfg.latent_dim)
        logits = (
            cfg.click_bias
            + cfg.affinity_weight * affinity
            + cfg.quality_weight * quality[item_indices]
        )
        return sigmoid(logits)

    # ------------------------------------------------------------------
    def _build_schema(self) -> FeatureSchema:
        cfg = self.config
        categorical = [
            CategoricalFeature("user_id", cfg.n_users, 16, GROUP_USER),
            CategoricalFeature("user_gender", 3, 2, GROUP_USER),
            CategoricalFeature("user_age_bucket", 7, 4, GROUP_USER),
            CategoricalFeature("user_occupation", 12, 8, GROUP_USER),
            CategoricalFeature("user_city_tier", 5, 4, GROUP_USER),
            CategoricalFeature("user_pref_category", cfg.n_categories, 16, GROUP_USER),
            CategoricalFeature("user_power_rating", 8, 4, GROUP_USER),
            CategoricalFeature("item_category", cfg.n_categories, 6, GROUP_ITEM_PROFILE),
            CategoricalFeature(
                "item_subcategory", cfg.n_subcategories, 16, GROUP_ITEM_PROFILE
            ),
            CategoricalFeature("item_brand", cfg.n_brands, 8, GROUP_ITEM_PROFILE),
            CategoricalFeature("item_seller", cfg.n_sellers, 8, GROUP_ITEM_PROFILE),
            CategoricalFeature("item_price_bucket", 8, 4, GROUP_ITEM_PROFILE),
        ]
        numeric = [
            NumericFeature("user_activity", GROUP_USER),
            NumericFeature("user_price_sensitivity", GROUP_USER),
            *[
                NumericFeature(f"user_pref_proxy_{i}", GROUP_USER)
                for i in range(self._n_user_proxies)
            ],
            NumericFeature("item_log_price", GROUP_ITEM_PROFILE),
            NumericFeature("item_relative_price", GROUP_ITEM_PROFILE),
            NumericFeature("item_title_quality", GROUP_ITEM_PROFILE),
            NumericFeature("item_image_quality", GROUP_ITEM_PROFILE),
            NumericFeature("item_shipping_speed", GROUP_ITEM_PROFILE),
            NumericFeature("stat_log_pv", GROUP_ITEM_STAT),
            NumericFeature("stat_log_uv", GROUP_ITEM_STAT),
            NumericFeature("stat_hist_ctr", GROUP_ITEM_STAT),
            NumericFeature("stat_cart_rate", GROUP_ITEM_STAT),
            NumericFeature("stat_fav_rate", GROUP_ITEM_STAT),
            NumericFeature("stat_buy_rate", GROUP_ITEM_STAT),
            NumericFeature("stat_seller_log_pv", GROUP_ITEM_STAT),
            NumericFeature("stat_category_ctr", GROUP_ITEM_STAT),
        ]
        sequence = [
            SequenceFeature(
                "user_pref_categories",
                cfg.n_categories,
                8,
                self.PREF_LIST_LEN,
                GROUP_USER,
            )
        ]
        return FeatureSchema(categorical, numeric, sequence)

    # ------------------------------------------------------------------
    def _generate_interactions(self, rng: np.random.Generator) -> InteractionDataset:
        cfg = self.config
        # Sample users by activity, items by exposure-ish uniform weighting.
        user_indices = rng.choice(
            cfg.n_users, size=cfg.n_interactions, p=self.user_activity
        )
        item_indices = rng.integers(0, cfg.n_items, size=cfg.n_interactions)
        probabilities = self.click_probability(
            user_indices, item_indices, self.item_latents, self.item_quality
        )
        labels = (rng.random(cfg.n_interactions) < probabilities).astype(np.float64)

        features: Dict[str, np.ndarray] = {}
        for name in self.schema.all_column_names(GROUP_USER):
            features[name] = self.users[name][user_indices]
        for name in self.schema.all_column_names(GROUP_ITEM_PROFILE, GROUP_ITEM_STAT):
            features[name] = self.items[name][item_indices]

        dataset = InteractionDataset(self.schema, features, {"ctr": labels})
        # Keep row provenance for pairwise analyses.
        self.interaction_user_indices = user_indices
        self.interaction_item_indices = item_indices
        return dataset

    # ------------------------------------------------------------------
    def active_user_group(self, fraction: float = 0.25) -> FeatureTable:
        """The top-``fraction`` most active users (the paper's user group).

        The paper selects the top ~20M active users who prefer new arrivals;
        here activity is the sampling weight used for interactions.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(self.config.n_users * fraction)))
        top = np.argsort(self.user_activity)[::-1][:count]
        return self.users.subset(top)


def generate_tmall_world(config: Optional[TmallConfig] = None) -> TmallWorld:
    """Build a :class:`TmallWorld` (default config when none is given)."""
    return TmallWorld(config if config is not None else TmallConfig())
