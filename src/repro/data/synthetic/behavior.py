"""Post-release behaviour simulation for new arrivals.

Table II of the paper observes each new arrival for 30 days after release
and reports Item Page Views (IPV), Add-to-Favourite counts (AtF) and Gross
Merchandise Volume (GMV) at 7/14/30 days, grouped by predicted-popularity
quintile.  Table III measures the time until an item's first five successful
transactions.

This module simulates that observation window.  Each item's daily page
views follow a Poisson process whose rate combines platform exposure (with
novelty decay), the item's ground-truth popularity and a heavy-tailed
item-level virality multiplier; favourites and purchases are binomial
thinnings of the views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["BehaviorConfig", "BehaviorPanel", "simulate_behavior"]


@dataclass(frozen=True)
class BehaviorConfig:
    """Rates and horizons of the post-release behaviour simulation."""

    horizon_days: int = 30
    base_daily_exposure: float = 24.0
    novelty_boost: float = 1.5
    novelty_decay_days: float = 6.0
    popularity_exponent: float = 1.6
    atf_rate: float = 0.06
    purchase_rate: float = 0.035
    virality_sigma: float = 0.6
    first_k_transactions: int = 5

    def __post_init__(self) -> None:
        if self.horizon_days <= 0:
            raise ValueError(f"horizon_days must be positive, got {self.horizon_days}")
        if not 0 <= self.atf_rate <= 1 or not 0 <= self.purchase_rate <= 1:
            raise ValueError("atf_rate and purchase_rate must be probabilities")
        if self.first_k_transactions <= 0:
            raise ValueError("first_k_transactions must be positive")


@dataclass
class BehaviorPanel:
    """Daily behaviour counts for a cohort of new arrivals.

    All arrays have shape ``(n_items, horizon_days)``.
    """

    ipv: np.ndarray
    atf: np.ndarray
    purchases: np.ndarray
    gmv: np.ndarray
    first_k_day: np.ndarray
    horizon_days: int

    def cumulative(self, metric: str, day: int) -> np.ndarray:
        """Cumulative metric per item over the first ``day`` days.

        Parameters
        ----------
        metric:
            One of ``"ipv"``, ``"atf"``, ``"purchases"``, ``"gmv"``.
        day:
            Number of days from release (1-indexed; 7/14/30 in the paper).
        """
        if not 1 <= day <= self.horizon_days:
            raise ValueError(
                f"day must be in [1, {self.horizon_days}], got {day}"
            )
        try:
            series = getattr(self, metric)
        except AttributeError:
            raise ValueError(
                f"unknown metric {metric!r}; "
                "choose from ipv/atf/purchases/gmv"
            ) from None
        return series[:, :day].sum(axis=1)


def simulate_behavior(
    popularity: np.ndarray,
    prices: np.ndarray,
    rng: np.random.Generator,
    config: BehaviorConfig = BehaviorConfig(),
) -> BehaviorPanel:
    """Simulate ``horizon_days`` of behaviour for each new arrival.

    Parameters
    ----------
    popularity:
        Ground-truth popularity per item, in (0, 1) — mean click
        probability over the user population.
    prices:
        Item prices (GMV = purchases x price).
    rng:
        Generator controlling all stochastic draws.
    config:
        Simulation rates.

    Returns
    -------
    BehaviorPanel
        Daily IPV/AtF/purchase/GMV matrices plus the day index (1-based) of
        the ``first_k_transactions``-th purchase; items that never reach it
        within the horizon get ``horizon_days + 1`` (right-censored).
    """
    popularity = np.asarray(popularity, dtype=np.float64)
    prices = np.asarray(prices, dtype=np.float64)
    if popularity.ndim != 1:
        raise ValueError(f"popularity must be 1-D, got shape {popularity.shape}")
    if prices.shape != popularity.shape:
        raise ValueError(
            f"prices shape {prices.shape} must match popularity {popularity.shape}"
        )
    if np.any((popularity < 0) | (popularity > 1)):
        raise ValueError("popularity values must lie in [0, 1]")

    n_items = popularity.size
    horizon = config.horizon_days
    days = np.arange(horizon)
    novelty = 1.0 + config.novelty_boost * np.exp(-days / config.novelty_decay_days)
    virality = rng.lognormal(mean=0.0, sigma=config.virality_sigma, size=n_items)
    # Popularity enters super-linearly: attractive items both get clicked
    # more per view and earn more exposure from the ranking system.
    attraction = popularity ** config.popularity_exponent

    rate = (
        config.base_daily_exposure
        * attraction[:, None]
        * virality[:, None]
        * novelty[None, :]
    )
    ipv = rng.poisson(rate).astype(np.int64)
    engagement = np.clip(0.5 + popularity, 0.5, 1.5)
    atf = rng.binomial(ipv, np.clip(config.atf_rate * engagement, 0, 1)[:, None])
    purchases = rng.binomial(
        ipv, np.clip(config.purchase_rate * engagement, 0, 1)[:, None]
    )
    gmv = purchases * prices[:, None]

    cumulative_purchases = purchases.cumsum(axis=1)
    reached = cumulative_purchases >= config.first_k_transactions
    first_k_day = np.where(
        reached.any(axis=1), reached.argmax(axis=1) + 1, horizon + 1
    ).astype(np.int64)

    return BehaviorPanel(
        ipv=ipv,
        atf=atf,
        purchases=purchases,
        gmv=gmv,
        first_k_day=first_k_day,
        horizon_days=horizon,
    )
