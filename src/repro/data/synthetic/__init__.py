"""Synthetic data worlds substituting the paper's proprietary datasets."""

from repro.data.synthetic.behavior import BehaviorConfig, BehaviorPanel, simulate_behavior
from repro.data.synthetic.common import noisy, sigmoid, standardize
from repro.data.synthetic.eleme import ElemeConfig, ElemeWorld, generate_eleme_world
from repro.data.synthetic.movies import MovieConfig, MovieWorld, generate_movie_world
from repro.data.synthetic.tmall import TmallConfig, TmallWorld, generate_tmall_world

__all__ = [
    "BehaviorConfig",
    "BehaviorPanel",
    "simulate_behavior",
    "noisy",
    "sigmoid",
    "standardize",
    "ElemeConfig",
    "ElemeWorld",
    "generate_eleme_world",
    "MovieConfig",
    "MovieWorld",
    "generate_movie_world",
    "TmallConfig",
    "TmallWorld",
    "generate_tmall_world",
]
