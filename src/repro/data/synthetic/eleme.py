"""Synthetic Ele.me-like food-delivery world (Section V of the paper).

The extended ATNN predicts two regression targets for newly signed-up
restaurants — Value per Page View (VpPV) and Gross Merchandise Volume
(GMV) — conditioned on *user groups* formed by location (food delivery is
location sensitive, so the paper replaces single users with per-zone mean
user features).

The synthetic world mirrors that structure:

* restaurants carry brand / theme / cuisine / zone categoricals plus
  numeric profile features; latent *attractiveness* is a crossed function
  of the profile (brand tier x photo quality, cuisine-zone taste match,
  price fit), exactly parallel to the Tmall quality construction;
* signed-up restaurants additionally carry platform statistics
  (overall VpPV / GMV / CTR observed so far) — the features that are
  missing for new applicants;
* each (restaurant, user group) sample is labelled with a VpPV value and a
  ``log1p`` GMV value whose scales are calibrated to the paper's reported
  magnitudes (VpPV ≈ 0.26, VpPV MAE ≈ 0.07, log-GMV MAE ≈ 1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import FeatureTable, InteractionDataset
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
)
from repro.data.synthetic.common import noisy, sigmoid, standardize
from repro.utils.rng import derive_seed

__all__ = ["ElemeConfig", "ElemeWorld", "generate_eleme_world"]


@dataclass(frozen=True)
class ElemeConfig:
    """Size and noise knobs of the synthetic food-delivery world."""

    n_restaurants: int = 3000
    n_new_restaurants: int = 1200
    n_zones: int = 24
    n_brands: int = 80
    n_themes: int = 10
    n_cuisines: int = 14
    latent_dim: int = 5
    samples_per_restaurant: int = 8
    profile_noise: float = 0.2
    stat_noise: float = 0.1
    # Label scale calibration.
    vppv_base: float = 0.26
    vppv_spread: float = 0.10
    gmv_log_mean: float = 5.0
    gmv_log_spread: float = 1.1
    label_noise: float = 0.05
    seed: int = 11

    def __post_init__(self) -> None:
        for name in (
            "n_restaurants",
            "n_new_restaurants",
            "n_zones",
            "n_brands",
            "n_themes",
            "n_cuisines",
            "latent_dim",
            "samples_per_restaurant",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")


class ElemeWorld:
    """A generated food-delivery world with user groups and two targets.

    Attributes
    ----------
    schema:
        Feature schema (``user`` group = user-group features, item groups =
        restaurant profile / statistics).
    user_groups:
        :class:`FeatureTable` of per-zone user groups.
    restaurants / new_restaurants:
        Signed-up restaurants (with statistics) and new applicants (without).
    samples:
        :class:`InteractionDataset` of (restaurant, user group) rows with
        ``vppv`` and ``gmv`` labels (GMV stored as ``log1p``).
    new_restaurant_attractiveness:
        Ground truth for evaluating recruitment policies (Table V).
    """

    def __init__(self, config: ElemeConfig) -> None:
        self.config = config
        self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        cfg = self.config
        rng_groups = np.random.default_rng(derive_seed(cfg.seed, "groups"))
        rng_rest = np.random.default_rng(derive_seed(cfg.seed, "restaurants"))
        rng_new = np.random.default_rng(derive_seed(cfg.seed, "new_restaurants"))
        rng_samples = np.random.default_rng(derive_seed(cfg.seed, "samples"))

        self._cuisine_latents = rng_rest.normal(
            0.0, 1.0, size=(cfg.n_cuisines, cfg.latent_dim)
        )
        self._brand_tier = np.clip(
            rng_rest.normal(0.5, 0.22, size=cfg.n_brands), 0.0, 1.0
        )

        self._generate_user_groups(rng_groups)
        (
            self.restaurants,
            self.restaurant_attractiveness,
            self._restaurant_zone,
        ) = self._generate_restaurants(rng_rest, cfg.n_restaurants, with_stats=True)
        (
            self.new_restaurants,
            self.new_restaurant_attractiveness,
            self.new_restaurant_zone,
        ) = self._generate_restaurants(rng_new, cfg.n_new_restaurants, with_stats=False)

        self.schema = self._build_schema()
        self.samples = self._generate_samples(rng_samples)

    # ------------------------------------------------------------------
    def _generate_user_groups(self, rng: np.random.Generator) -> None:
        cfg = self.config
        taste = rng.normal(0.0, 1.0, size=(cfg.n_zones, cfg.latent_dim))
        self.group_taste = taste
        n_proxies = min(3, cfg.latent_dim)
        columns: Dict[str, np.ndarray] = {
            "group_zone": np.arange(cfg.n_zones, dtype=np.int64),
            "group_city_tier": rng.integers(0, 4, size=cfg.n_zones),
            "group_density": standardize(rng.gamma(3.0, 1.0, size=cfg.n_zones)),
            "group_income": standardize(rng.normal(size=cfg.n_zones)),
        }
        for proxy_index in range(n_proxies):
            columns[f"group_taste_proxy_{proxy_index}"] = standardize(
                noisy(taste[:, proxy_index], 0.3, rng)
            )
        self.user_groups = FeatureTable(columns)
        self._n_group_proxies = n_proxies

    # ------------------------------------------------------------------
    def _generate_restaurants(
        self,
        rng: np.random.Generator,
        count: int,
        with_stats: bool,
    ) -> Tuple[FeatureTable, np.ndarray, np.ndarray]:
        cfg = self.config
        zone = rng.integers(0, cfg.n_zones, size=count)
        brand = rng.integers(0, cfg.n_brands, size=count)
        theme = rng.integers(0, cfg.n_themes, size=count)
        cuisine = rng.integers(0, cfg.n_cuisines, size=count)

        avg_price = rng.lognormal(mean=3.0, sigma=0.4, size=count)
        photo_quality = np.clip(rng.beta(3, 2, size=count), 0, 1)
        menu_breadth = np.clip(rng.gamma(3.0, 4.0, size=count), 3, None)
        n_similar = rng.poisson(8.0, size=count).astype(np.float64)
        brand_tier = self._brand_tier[brand]

        # Taste match between the restaurant's cuisine and its zone's taste.
        taste_match = np.einsum(
            "ij,ij->i",
            self._cuisine_latents[cuisine],
            self.group_taste[zone],
        ) / np.sqrt(cfg.latent_dim)

        price_fit = -((np.log(avg_price) - 3.0) ** 2)
        competition = -np.log1p(n_similar) * 0.4

        # Brand tier is *not* an observable column: as on the real platform,
        # brand strength is only reachable through the brand id, which
        # favours embedding models over salient-feature heuristics.
        attractiveness_raw = (
            2.4 * brand_tier * photo_quality
            + 0.9 * taste_match
            + 0.8 * price_fit
            + competition
            + 0.3 * np.log1p(menu_breadth) * brand_tier
            + rng.normal(0.0, 0.12, size=count)
        )
        attractiveness = standardize(attractiveness_raw)

        columns: Dict[str, np.ndarray] = {
            "rest_brand": brand,
            "rest_theme": theme,
            "rest_cuisine": cuisine,
            "rest_zone_id": zone,
            "rest_avg_price": standardize(noisy(np.log(avg_price), cfg.profile_noise, rng)),
            "rest_photo_quality": noisy(photo_quality, cfg.profile_noise, rng),
            "rest_menu_breadth": standardize(
                noisy(np.log(menu_breadth), cfg.profile_noise, rng)
            ),
            "rest_n_similar_nearby": standardize(
                noisy(np.log1p(n_similar), cfg.profile_noise, rng)
            ),
        }

        if with_stats:
            columns.update(
                {
                    "stat_overall_vppv": standardize(
                        noisy(self._vppv_mean(attractiveness), cfg.stat_noise, rng)
                    ),
                    "stat_overall_log_gmv": standardize(
                        noisy(self._log_gmv_mean(attractiveness), cfg.stat_noise, rng)
                    ),
                    "stat_overall_ctr": standardize(
                        noisy(sigmoid(attractiveness), cfg.stat_noise, rng)
                    ),
                }
            )
        else:
            columns.update(
                {
                    "stat_overall_vppv": np.zeros(count),
                    "stat_overall_log_gmv": np.zeros(count),
                    "stat_overall_ctr": np.zeros(count),
                }
            )
        return FeatureTable(columns), attractiveness, zone

    # ------------------------------------------------------------------
    def _vppv_mean(self, attractiveness: np.ndarray) -> np.ndarray:
        cfg = self.config
        return cfg.vppv_base + cfg.vppv_spread * np.tanh(attractiveness)

    def _log_gmv_mean(self, attractiveness: np.ndarray) -> np.ndarray:
        cfg = self.config
        return cfg.gmv_log_mean + cfg.gmv_log_spread * np.tanh(attractiveness * 0.8)

    def labels_for(
        self,
        attractiveness: np.ndarray,
        zone: np.ndarray,
        group_zone: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ground-truth (vppv, log_gmv) labels for restaurant/group pairs.

        A group in the restaurant's own zone responds according to the
        restaurant's attractiveness; distant groups respond less (delivery
        radius), modelled as a match discount.
        """
        cfg = self.config
        zone_match = np.where(zone == group_zone, 0.0, -0.6)
        effective = attractiveness + zone_match
        vppv = self._vppv_mean(effective) + rng.normal(
            0.0, cfg.label_noise, size=effective.shape
        )
        log_gmv = self._log_gmv_mean(effective) + rng.normal(
            0.0, cfg.label_noise * 14, size=effective.shape
        )
        return np.clip(vppv, 0.0, None), np.clip(log_gmv, 0.0, None)

    # ------------------------------------------------------------------
    def _build_schema(self) -> FeatureSchema:
        cfg = self.config
        categorical = [
            CategoricalFeature("group_zone", cfg.n_zones, 8, GROUP_USER),
            CategoricalFeature("group_city_tier", 4, 3, GROUP_USER),
            CategoricalFeature("rest_brand", cfg.n_brands, 8, GROUP_ITEM_PROFILE),
            CategoricalFeature("rest_theme", cfg.n_themes, 4, GROUP_ITEM_PROFILE),
            CategoricalFeature("rest_cuisine", cfg.n_cuisines, 6, GROUP_ITEM_PROFILE),
            CategoricalFeature("rest_zone_id", cfg.n_zones, 8, GROUP_ITEM_PROFILE),
        ]
        numeric = [
            NumericFeature("group_density", GROUP_USER),
            NumericFeature("group_income", GROUP_USER),
            *[
                NumericFeature(f"group_taste_proxy_{i}", GROUP_USER)
                for i in range(self._n_group_proxies)
            ],
            NumericFeature("rest_avg_price", GROUP_ITEM_PROFILE),
            NumericFeature("rest_photo_quality", GROUP_ITEM_PROFILE),
            NumericFeature("rest_menu_breadth", GROUP_ITEM_PROFILE),
            NumericFeature("rest_n_similar_nearby", GROUP_ITEM_PROFILE),
            NumericFeature("stat_overall_vppv", GROUP_ITEM_STAT),
            NumericFeature("stat_overall_log_gmv", GROUP_ITEM_STAT),
            NumericFeature("stat_overall_ctr", GROUP_ITEM_STAT),
        ]
        return FeatureSchema(categorical, numeric)

    # ------------------------------------------------------------------
    def _generate_samples(self, rng: np.random.Generator) -> InteractionDataset:
        cfg = self.config
        n_samples = cfg.n_restaurants * cfg.samples_per_restaurant
        restaurant_idx = np.repeat(
            np.arange(cfg.n_restaurants), cfg.samples_per_restaurant
        )
        # Bias sampled groups toward the restaurant's own zone.
        own_zone = self._restaurant_zone[restaurant_idx]
        random_zone = rng.integers(0, cfg.n_zones, size=n_samples)
        use_own = rng.random(n_samples) < 0.6
        group_idx = np.where(use_own, own_zone, random_zone)

        vppv, log_gmv = self.labels_for(
            self.restaurant_attractiveness[restaurant_idx],
            own_zone,
            group_idx,
            rng,
        )

        features: Dict[str, np.ndarray] = {}
        for name in self.schema.feature_names(GROUP_USER):
            features[name] = self.user_groups[name][group_idx]
        for name in self.schema.feature_names(GROUP_ITEM_PROFILE, GROUP_ITEM_STAT):
            features[name] = self.restaurants[name][restaurant_idx]

        return InteractionDataset(
            self.schema, features, {"vppv": vppv, "gmv": log_gmv}
        )

    # ------------------------------------------------------------------
    def realized_outcomes(
        self, selected: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Realised 30-day (VpPV, raw GMV) for recruited new restaurants.

        Used by the Table V online simulation: whoever recruits restaurants
        observes their actual first-month performance.
        """
        selected = np.asarray(selected)
        attractiveness = self.new_restaurant_attractiveness[selected]
        cfg = self.config
        vppv = self._vppv_mean(attractiveness) + rng.normal(
            0.0, cfg.label_noise, size=attractiveness.shape
        )
        log_gmv = self._log_gmv_mean(attractiveness) + rng.normal(
            0.0, cfg.label_noise * 14, size=attractiveness.shape
        )
        return np.clip(vppv, 0.0, None), np.expm1(np.clip(log_gmv, 0.0, None))


def generate_eleme_world(config: Optional[ElemeConfig] = None) -> ElemeWorld:
    """Build an :class:`ElemeWorld` (default config when none is given)."""
    return ElemeWorld(config if config is not None else ElemeConfig())
