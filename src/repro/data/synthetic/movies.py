"""Synthetic movie-recommendation world (the paper's future-work scenario).

Section VI: *"this strategy can be applied to other scenarios, for
example, movie recommendation."*  This world exercises exactly that
claim: a new-release cold-start problem with the same three-group feature
structure (user profiles / movie profiles / movie statistics), generated
with the same structural principles as the Tmall world —

* intrinsic movie quality is a crossed function of profile attributes
  whose dominant terms hide behind high-cardinality studio/franchise ids;
* engagement statistics (views, historical CTR, ratings, watchlist rate)
  are noisy observations of realised popularity, and are *missing* for
  unreleased titles;
* watch decisions follow the two-tower geometry
  ``Bernoulli(sigmoid(bias + a*<u, v> + b*quality))``.

Because :class:`~repro.core.atnn.ATNN` is schema-generic, the identical
model/trainer code runs here unchanged — which is the point of the
transfer experiment built on top (``repro.experiments.transfer``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import FeatureTable, InteractionDataset
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
    SequenceFeature,
)
from repro.data.synthetic.common import noisy, sigmoid, standardize
from repro.utils.rng import derive_seed

__all__ = ["MovieConfig", "MovieWorld", "generate_movie_world"]


@dataclass(frozen=True)
class MovieConfig:
    """Size and noise knobs of the synthetic movie world."""

    n_users: int = 2000
    n_movies: int = 2500
    n_new_movies: int = 800
    n_interactions: int = 80_000
    n_genres: int = 12
    n_studios: int = 40
    n_franchises: int = 80
    latent_dim: int = 6
    n_user_segments: int = 6
    watch_bias: float = -1.1
    affinity_weight: float = 0.9
    quality_weight: float = 1.0
    profile_noise: float = 0.25
    stat_noise: float = 0.4
    seed: int = 21

    def __post_init__(self) -> None:
        for name in (
            "n_users",
            "n_movies",
            "n_new_movies",
            "n_interactions",
            "n_genres",
            "n_studios",
            "n_franchises",
            "latent_dim",
            "n_user_segments",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")


class MovieWorld:
    """A generated movie world with released titles and unreleased ones.

    Mirrors :class:`~repro.data.synthetic.tmall.TmallWorld`'s surface:
    ``schema``, ``users``, ``movies`` (released, with statistics),
    ``new_movies`` (unreleased, statistics zeroed), ``interactions`` with
    a ``ctr`` watch label, and ground-truth ``new_movie_popularity``.
    """

    GENRE_LIST_LEN = 3

    def __init__(self, config: MovieConfig) -> None:
        self.config = config
        self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        cfg = self.config
        rng_users = np.random.default_rng(derive_seed(cfg.seed, "movie-users"))
        rng_movies = np.random.default_rng(derive_seed(cfg.seed, "movies"))
        rng_new = np.random.default_rng(derive_seed(cfg.seed, "new-movies"))
        rng_inter = np.random.default_rng(derive_seed(cfg.seed, "movie-inter"))
        rng_stats = np.random.default_rng(derive_seed(cfg.seed, "movie-stats"))

        self._genre_latents = rng_movies.normal(
            0.0, 1.0, size=(cfg.n_genres, cfg.latent_dim)
        )
        self._studio_tier = np.clip(
            rng_movies.normal(0.5, 0.22, size=cfg.n_studios), 0.0, 1.0
        )
        self._franchise_strength = np.clip(
            rng_movies.normal(0.4, 0.25, size=cfg.n_franchises), 0.0, 1.0
        )
        self._franchise_latents = rng_movies.normal(
            0.0, 0.6, size=(cfg.n_franchises, cfg.latent_dim)
        )

        self._generate_users(rng_users)
        self.movies, self.movie_latents, self.movie_quality = self._generate_movies(
            rng_movies, cfg.n_movies, stats_rng=rng_stats
        )
        (
            self.new_movies,
            self.new_movie_latents,
            self.new_movie_quality,
        ) = self._generate_movies(rng_new, cfg.n_new_movies, stats_rng=None)

        self.schema = self._build_schema()
        self.interactions = self._generate_interactions(rng_inter)
        self.new_movie_popularity = self._popularity(
            self.new_movie_latents, self.new_movie_quality
        )
        self.movie_popularity = self._popularity(
            self.movie_latents, self.movie_quality
        )

    # ------------------------------------------------------------------
    def _generate_users(self, rng: np.random.Generator) -> None:
        cfg = self.config
        centroids = rng.normal(0.0, 1.0, size=(cfg.n_user_segments, cfg.latent_dim))
        segments = rng.integers(0, cfg.n_user_segments, size=cfg.n_users)
        latents = centroids[segments] + rng.normal(
            0.0, 0.5, size=(cfg.n_users, cfg.latent_dim)
        )
        self.user_latents = latents
        activity = np.clip(rng.gamma(2.0, 0.5, size=cfg.n_users), 0.05, None)
        self.user_activity = activity / activity.sum()

        genre_affinity = latents @ self._genre_latents.T
        top_genres = np.argsort(genre_affinity, axis=1)[:, ::-1][
            :, : self.GENRE_LIST_LEN
        ].astype(np.int64)
        lengths = rng.integers(1, self.GENRE_LIST_LEN + 1, size=cfg.n_users)
        mask = (
            np.arange(self.GENRE_LIST_LEN)[None, :] < lengths[:, None]
        ).astype(np.float64)

        n_proxies = min(3, cfg.latent_dim)
        proxies = noisy(latents[:, :n_proxies], 0.6, rng)
        columns: Dict[str, np.ndarray] = {
            "user_id": np.arange(cfg.n_users, dtype=np.int64),
            "user_age_bucket": rng.integers(0, 7, size=cfg.n_users),
            "user_gender": rng.integers(0, 3, size=cfg.n_users),
            "user_top_genre": genre_affinity.argmax(axis=1).astype(np.int64),
            "user_activity": standardize(np.log(self.user_activity)),
            "user_fav_genres": top_genres,
            "user_fav_genres__mask": mask,
        }
        for index in range(n_proxies):
            columns[f"user_taste_proxy_{index}"] = standardize(proxies[:, index])
        self.users = FeatureTable(columns)
        self._n_user_proxies = n_proxies

    # ------------------------------------------------------------------
    def _generate_movies(
        self,
        rng: np.random.Generator,
        count: int,
        stats_rng: Optional[np.random.Generator],
    ) -> Tuple[FeatureTable, np.ndarray, np.ndarray]:
        cfg = self.config
        genre = rng.integers(0, cfg.n_genres, size=count)
        studio = rng.integers(0, cfg.n_studios, size=count)
        franchise = rng.integers(0, cfg.n_franchises, size=count)

        log_budget = rng.normal(17.0, 1.0, size=count)
        runtime = np.clip(rng.normal(110, 18, size=count), 60, 200)
        trailer_quality = np.clip(rng.beta(3, 2, size=count), 0, 1)
        studio_tier = self._studio_tier[studio]
        franchise_strength = self._franchise_strength[franchise]

        # Quality: dominated by id-locked crosses (studio tier x trailer,
        # franchise strength), with a mild budget fit term.
        quality_raw = (
            2.4 * studio_tier * trailer_quality
            + 1.5 * franchise_strength
            - 0.5 * (log_budget - 17.0) ** 2 / 4.0
            + 0.3 * studio_tier
            + rng.normal(0.0, 0.15, size=count)
        )
        quality = standardize(quality_raw)

        latents = (
            0.8 * self._genre_latents[genre]
            + self._franchise_latents[franchise]
            + rng.normal(0.0, 0.4, size=(count, cfg.latent_dim))
        )

        columns: Dict[str, np.ndarray] = {
            "movie_genre": genre,
            "movie_studio": studio,
            "movie_franchise": franchise,
            "movie_log_budget": standardize(noisy(log_budget, cfg.profile_noise, rng)),
            "movie_runtime": standardize(noisy(runtime, cfg.profile_noise * 10, rng)),
            "movie_trailer_quality": noisy(trailer_quality, cfg.profile_noise, rng),
        }
        columns.update(self._statistic_columns(count, latents, quality, stats_rng))
        return FeatureTable(columns), latents, quality

    def _statistic_columns(
        self,
        count: int,
        latents: np.ndarray,
        quality: np.ndarray,
        rng: Optional[np.random.Generator],
    ) -> Dict[str, np.ndarray]:
        names = ("stat_log_views", "stat_hist_ctr", "stat_rating", "stat_watchlist_rate")
        if rng is None:
            return {name: np.zeros(count) for name in names}
        cfg = self.config
        popularity = self._popularity(latents, quality)
        views = rng.lognormal(mean=6.0, sigma=1.0, size=count) * (0.25 + popularity)
        return {
            "stat_log_views": standardize(np.log1p(views)),
            "stat_hist_ctr": standardize(
                np.clip(noisy(popularity, cfg.stat_noise * 0.2, rng), 1e-4, 1)
            ),
            "stat_rating": standardize(
                np.clip(noisy(3.0 + 1.5 * quality, cfg.stat_noise, rng), 1.0, 5.0)
            ),
            "stat_watchlist_rate": standardize(
                np.clip(noisy(0.2 * popularity, cfg.stat_noise * 0.1, rng), 0, 1)
            ),
        }

    # ------------------------------------------------------------------
    def _popularity(self, latents: np.ndarray, quality: np.ndarray) -> np.ndarray:
        cfg = self.config
        logits = (
            cfg.watch_bias
            + cfg.affinity_weight
            * latents @ self.user_latents.T / np.sqrt(cfg.latent_dim)
            + cfg.quality_weight * quality[:, None]
        )
        return sigmoid(logits).mean(axis=1)

    # ------------------------------------------------------------------
    def _build_schema(self) -> FeatureSchema:
        cfg = self.config
        categorical = [
            CategoricalFeature("user_id", cfg.n_users, 16, GROUP_USER),
            CategoricalFeature("user_age_bucket", 7, 4, GROUP_USER),
            CategoricalFeature("user_gender", 3, 2, GROUP_USER),
            CategoricalFeature("user_top_genre", cfg.n_genres, 8, GROUP_USER),
            CategoricalFeature("movie_genre", cfg.n_genres, 8, GROUP_ITEM_PROFILE),
            CategoricalFeature("movie_studio", cfg.n_studios, 8, GROUP_ITEM_PROFILE),
            CategoricalFeature(
                "movie_franchise", cfg.n_franchises, 8, GROUP_ITEM_PROFILE
            ),
        ]
        numeric = [
            NumericFeature("user_activity", GROUP_USER),
            *[
                NumericFeature(f"user_taste_proxy_{i}", GROUP_USER)
                for i in range(self._n_user_proxies)
            ],
            NumericFeature("movie_log_budget", GROUP_ITEM_PROFILE),
            NumericFeature("movie_runtime", GROUP_ITEM_PROFILE),
            NumericFeature("movie_trailer_quality", GROUP_ITEM_PROFILE),
            NumericFeature("stat_log_views", GROUP_ITEM_STAT),
            NumericFeature("stat_hist_ctr", GROUP_ITEM_STAT),
            NumericFeature("stat_rating", GROUP_ITEM_STAT),
            NumericFeature("stat_watchlist_rate", GROUP_ITEM_STAT),
        ]
        sequence = [
            SequenceFeature(
                "user_fav_genres", cfg.n_genres, 8, self.GENRE_LIST_LEN, GROUP_USER
            )
        ]
        return FeatureSchema(categorical, numeric, sequence)

    # ------------------------------------------------------------------
    def _generate_interactions(self, rng: np.random.Generator) -> InteractionDataset:
        cfg = self.config
        user_indices = rng.choice(
            cfg.n_users, size=cfg.n_interactions, p=self.user_activity
        )
        movie_indices = rng.integers(0, cfg.n_movies, size=cfg.n_interactions)
        affinity = np.einsum(
            "ij,ij->i",
            self.user_latents[user_indices],
            self.movie_latents[movie_indices],
        ) / np.sqrt(cfg.latent_dim)
        logits = (
            cfg.watch_bias
            + cfg.affinity_weight * affinity
            + cfg.quality_weight * self.movie_quality[movie_indices]
        )
        labels = (rng.random(cfg.n_interactions) < sigmoid(logits)).astype(np.float64)

        features: Dict[str, np.ndarray] = {}
        for name in self.schema.all_column_names(GROUP_USER):
            features[name] = self.users[name][user_indices]
        for name in self.schema.all_column_names(GROUP_ITEM_PROFILE, GROUP_ITEM_STAT):
            features[name] = self.movies[name][movie_indices]

        self.interaction_user_indices = user_indices
        self.interaction_movie_indices = movie_indices
        return InteractionDataset(self.schema, features, {"ctr": labels})

    # ------------------------------------------------------------------
    def active_user_group(self, fraction: float = 0.25) -> FeatureTable:
        """The most active users (for the popularity service)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(self.config.n_users * fraction)))
        top = np.argsort(self.user_activity)[::-1][:count]
        return self.users.subset(top)


def generate_movie_world(config: Optional[MovieConfig] = None) -> MovieWorld:
    """Build a :class:`MovieWorld` (default config when none is given)."""
    return MovieWorld(config if config is not None else MovieConfig())
