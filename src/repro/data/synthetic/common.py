"""Shared helpers for the synthetic data worlds."""

from __future__ import annotations

import numpy as np

__all__ = ["sigmoid", "standardize", "noisy", "segment_latents"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def standardize(values: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-variance scaling with a variance floor."""
    values = np.asarray(values, dtype=np.float64)
    std = values.std()
    if std < 1e-12:
        return values - values.mean()
    return (values - values.mean()) / std


def noisy(values: np.ndarray, noise_std: float, rng: np.random.Generator) -> np.ndarray:
    """Add Gaussian observation noise."""
    if noise_std < 0:
        raise ValueError(f"noise_std must be >= 0, got {noise_std}")
    if noise_std == 0:
        return np.array(values, copy=True)
    return values + rng.normal(0.0, noise_std, size=np.shape(values))


def segment_latents(
    n_entities: int,
    n_segments: int,
    latent_dim: int,
    rng: np.random.Generator,
    segment_spread: float = 1.0,
    within_spread: float = 0.5,
) -> tuple:
    """Draw entity latent vectors clustered around segment centroids.

    Returns ``(segments, latents)`` where ``segments`` is the integer
    segment id per entity and ``latents`` the ``(n_entities, latent_dim)``
    vectors.  Used for user populations (taste clusters) and restaurant
    themes.
    """
    if n_segments <= 0 or n_entities <= 0 or latent_dim <= 0:
        raise ValueError("entity/segment/latent sizes must be positive")
    centroids = rng.normal(0.0, segment_spread, size=(n_segments, latent_dim))
    segments = rng.integers(0, n_segments, size=n_entities)
    latents = centroids[segments] + rng.normal(
        0.0, within_spread, size=(n_entities, latent_dim)
    )
    return segments, latents
