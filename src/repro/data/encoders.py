"""Feature encoders: vocabulary mapping, hashing and standardisation.

These mirror the pre-processing the paper describes ("categorical features
are mapped to fixed-length vectors according to their numbers of
categories"): raw values become contiguous integer ids for the embedding
tables, and numeric columns are standardised.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

__all__ = ["VocabEncoder", "HashEncoder", "StandardScaler"]


class VocabEncoder:
    """Maps arbitrary hashable values to contiguous integer ids.

    Id 0 is reserved for unseen values (out-of-vocabulary), which is how new
    arrivals with never-seen brands/sellers still get a valid embedding row.
    """

    OOV_ID = 0

    def __init__(self) -> None:
        self._mapping: Dict[Hashable, int] = {}

    def fit(self, values: Iterable[Hashable]) -> "VocabEncoder":
        """Assign ids to distinct values in first-seen order."""
        for value in values:
            if value not in self._mapping:
                self._mapping[value] = len(self._mapping) + 1
        return self

    def transform(self, values: Iterable[Hashable]) -> np.ndarray:
        """Map values to ids; unseen values map to :data:`OOV_ID`."""
        return np.array(
            [self._mapping.get(value, self.OOV_ID) for value in values],
            dtype=np.int64,
        )

    def fit_transform(self, values: List[Hashable]) -> np.ndarray:
        """Fit then transform in one pass."""
        return self.fit(values).transform(values)

    @property
    def vocab_size(self) -> int:
        """Number of ids including the OOV slot."""
        return len(self._mapping) + 1

    def inverse(self, ids: np.ndarray) -> List[Optional[Hashable]]:
        """Map ids back to values; OOV becomes ``None``."""
        reverse = {v: k for k, v in self._mapping.items()}
        return [reverse.get(int(i)) for i in np.asarray(ids)]


class HashEncoder:
    """Stateless feature hashing into a fixed number of buckets.

    Used for very-high-cardinality ids (the Tmall item space has tens of
    millions of items; hashing is the standard industrial trick).
    """

    def __init__(self, num_buckets: int, salt: int = 0) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        self.num_buckets = num_buckets
        self.salt = salt

    def transform(self, values: Iterable[Hashable]) -> np.ndarray:
        """Hash each value into ``[0, num_buckets)`` deterministically."""
        out = np.empty(0, dtype=np.int64)
        hashed = [
            (hash((self.salt, value)) & 0x7FFFFFFFFFFFFFFF) % self.num_buckets
            for value in values
        ]
        out = np.array(hashed, dtype=np.int64)
        return out


class StandardScaler:
    """Column-wise standardisation to zero mean / unit variance.

    Constant columns are left centred but unscaled (variance floor), and the
    scaler refuses to transform before fitting.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Estimate per-column statistics."""
        X = self._check(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise with the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = self._check(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} columns, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one pass."""
        return self.fit(X).transform(X)

    @staticmethod
    def _check(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X
