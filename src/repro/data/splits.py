"""Train/test splitting utilities."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import InteractionDataset

__all__ = ["train_test_split", "split_indices"]


def split_indices(
    n: int,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return shuffled (train_idx, test_idx) index arrays.

    Parameters
    ----------
    n:
        Number of rows.
    test_fraction:
        Fraction assigned to the test split (the paper uses 0.2).
    rng:
        Generator controlling the shuffle.
    """
    if n <= 1:
        raise ValueError(f"need at least 2 rows to split, got {n}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    return order[n_test:], order[:n_test]


def train_test_split(
    dataset: InteractionDataset,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[InteractionDataset, InteractionDataset]:
    """Split a dataset into train/test by row (80/20 in the paper)."""
    train_idx, test_idx = split_indices(len(dataset), test_fraction, rng)
    return dataset.subset(train_idx), dataset.subset(test_idx)
