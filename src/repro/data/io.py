"""Dataset persistence: save/load feature tables and interaction datasets.

Lets users materialise a synthetic world once and reuse it across runs
(or hand-inspect it).  Tables are stored as ``.npz`` archives; an
:class:`~repro.data.dataset.InteractionDataset` additionally stores its
label columns under a ``label::`` prefix and reconstructs against a schema
supplied at load time (schemas are code, not data).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.data.dataset import FeatureTable, InteractionDataset
from repro.data.schema import FeatureSchema

__all__ = [
    "save_feature_table",
    "load_feature_table",
    "save_interactions",
    "load_interactions",
]

PathLike = Union[str, Path]
_LABEL_PREFIX = "label::"


def save_feature_table(table: FeatureTable, path: PathLike) -> None:
    """Persist a feature table to a ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **table.columns)


def load_feature_table(path: PathLike) -> FeatureTable:
    """Load a table saved by :func:`save_feature_table`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no feature table at {path}")
    with np.load(path) as archive:
        columns = {name: archive[name] for name in archive.files}
    return FeatureTable(columns)


def save_interactions(dataset: InteractionDataset, path: PathLike) -> None:
    """Persist an interaction dataset (features + labels) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(dataset.features)
    for name, values in dataset.labels.items():
        key = f"{_LABEL_PREFIX}{name}"
        if key in payload:
            raise ValueError(f"feature column {key!r} collides with label prefix")
        payload[key] = values
    np.savez(path, **payload)


def load_interactions(path: PathLike, schema: FeatureSchema) -> InteractionDataset:
    """Load a dataset saved by :func:`save_interactions`.

    Parameters
    ----------
    path:
        Archive path.
    schema:
        The schema the dataset was built against (validated on load).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no interaction dataset at {path}")
    features = {}
    labels = {}
    with np.load(path) as archive:
        for name in archive.files:
            if name.startswith(_LABEL_PREFIX):
                labels[name[len(_LABEL_PREFIX):]] = archive[name]
            else:
                features[name] = archive[name]
    return InteractionDataset(schema, features, labels)
