"""Dataset containers and batching.

Two containers cover the reproduction's needs:

* :class:`FeatureTable` — a column store of per-entity features (one row per
  user, item or restaurant), used for entity catalogues such as the
  new-arrival pool or the active-user group.
* :class:`InteractionDataset` — one row per (user, item) interaction with
  all tower features materialised plus one or more label columns, used for
  training and evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.data.schema import FeatureSchema

__all__ = ["FeatureTable", "Batch", "InteractionDataset"]


class FeatureTable:
    """A column-oriented table of features keyed by name.

    All columns must share the same number of rows.  Columns holding
    categorical ids are integer arrays; numeric columns are float arrays.
    """

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a FeatureTable needs at least one column")
        lengths = {name: len(np.asarray(col)) for name, col in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"inconsistent column lengths: {lengths}")
        self.columns: Dict[str, np.ndarray] = {
            name: np.asarray(col) for name, col in columns.items()
        }
        self.n_rows = next(iter(lengths.values()))

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self.columns)}"
            ) from None

    def subset(self, indices: np.ndarray) -> "FeatureTable":
        """Row-subset view (copying) of the table."""
        indices = np.asarray(indices)
        return FeatureTable({name: col[indices] for name, col in self.columns.items()})

    def select(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Return the requested columns as a dict (missing names raise)."""
        return {name: self[name] for name in names}

    def to_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Stack the requested columns into a dense float matrix.

        Categorical id columns are cast to float codes — exactly the flat
        representation the GBDT baseline consumes.
        """
        if not names:
            raise ValueError("to_matrix needs at least one column name")
        return np.column_stack([self[name].astype(np.float64) for name in names])


class Batch:
    """A mini-batch of interaction rows.

    Attributes
    ----------
    features:
        Column dict restricted to the batch rows.
    labels:
        Label dict restricted to the batch rows.
    size:
        Number of rows.
    """

    def __init__(
        self,
        features: Dict[str, np.ndarray],
        labels: Dict[str, np.ndarray],
    ) -> None:
        self.features = features
        self.labels = labels
        self.size = len(next(iter(features.values())))

    def label(self, name: str = "ctr") -> np.ndarray:
        """Return one label column."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(
                f"no label {name!r}; available: {sorted(self.labels)}"
            ) from None


class InteractionDataset:
    """User-item interaction samples with full tower features and labels.

    Parameters
    ----------
    schema:
        The feature schema describing every feature column.
    features:
        Mapping name → per-row array; must cover every schema feature.
    labels:
        Mapping label name → per-row float array (e.g. ``{"ctr": y}`` or
        ``{"vppv": ..., "gmv": ...}``).
    """

    def __init__(
        self,
        schema: FeatureSchema,
        features: Dict[str, np.ndarray],
        labels: Dict[str, np.ndarray],
    ) -> None:
        self.schema = schema
        expected = set(schema.all_column_names("user", "item_profile", "item_stat"))
        missing = sorted(expected - set(features))
        if missing:
            raise ValueError(f"features missing schema columns: {missing}")
        self.table = FeatureTable(features)
        if not labels:
            raise ValueError("at least one label column is required")
        self.labels: Dict[str, np.ndarray] = {}
        for name, values in labels.items():
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (self.table.n_rows,):
                raise ValueError(
                    f"label {name!r} must have shape ({self.table.n_rows},), "
                    f"got {values.shape}"
                )
            self.labels[name] = values

    def __len__(self) -> int:
        return self.table.n_rows

    @property
    def features(self) -> Dict[str, np.ndarray]:
        """The underlying feature columns."""
        return self.table.columns

    def label(self, name: str = "ctr") -> np.ndarray:
        """Return one label column."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(
                f"no label {name!r}; available: {sorted(self.labels)}"
            ) from None

    def subset(self, indices: np.ndarray) -> "InteractionDataset":
        """Return a row-subset dataset."""
        indices = np.asarray(indices)
        return InteractionDataset(
            self.schema,
            {name: col[indices] for name, col in self.table.columns.items()},
            {name: col[indices] for name, col in self.labels.items()},
        )

    def iter_batches(
        self,
        batch_size: int,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
        prefetch: bool = False,
    ) -> Iterator[Batch]:
        """Yield mini-batches, shuffling when an ``rng`` is provided.

        Every column is gathered into shuffled order *once* per epoch, and
        each batch is a contiguous slice view of that copy — one fancy
        gather per column per epoch instead of one per column per batch,
        which dominates per-step time for small models.

        Parameters
        ----------
        batch_size:
            Rows per batch.
        rng:
            When given, rows are shuffled with this generator each epoch.
        drop_last:
            Drop the final short batch (stabilises batch-statistics layers).
        prefetch:
            Double-buffer batch preparation on a background thread: the
            epoch gather and batch assembly run ahead of the consumer
            (queue depth 2), overlapping data prep with compute — or, in
            the parallel trainer's workers, with the parent hand-off
            wait.  The batch sequence is identical to ``prefetch=False``
            (the shuffle is drawn from ``rng`` synchronously, before this
            generator returns its first batch).  The producer thread
            touches only this dataset's arrays — no ambient engine or
            telemetry state — per ``docs/thread_hostility.md``.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        n = len(self)
        if rng is not None:
            order: Optional[np.ndarray] = np.arange(n)
            rng.shuffle(order)
        else:
            order = None
        if prefetch:
            return self._iter_batches_prefetched(order, batch_size, drop_last)
        return self._iter_batches_sync(order, batch_size, drop_last)

    def _gather_epoch(self, order: Optional[np.ndarray]):
        """Columns in iteration order (one fancy gather when shuffled)."""
        if order is None:
            # Unshuffled epochs slice the stored columns directly.
            return self.table.columns, self.labels
        features = {name: col[order] for name, col in self.table.columns.items()}
        labels = {name: col[order] for name, col in self.labels.items()}
        return features, labels

    def _iter_batches_sync(
        self, order: Optional[np.ndarray], batch_size: int, drop_last: bool
    ) -> Iterator[Batch]:
        n = len(self)
        features, labels = self._gather_epoch(order)
        for start in range(0, n, batch_size):
            stop = start + batch_size
            if drop_last and stop > n:
                break
            yield Batch(
                {name: col[start:stop] for name, col in features.items()},
                {name: col[start:stop] for name, col in labels.items()},
            )

    def _iter_batches_prefetched(
        self, order: Optional[np.ndarray], batch_size: int, drop_last: bool
    ) -> Iterator[Batch]:
        import queue
        import threading

        done = object()  # end-of-epoch sentinel
        handoff: "queue.Queue" = queue.Queue(maxsize=2)
        cancelled = threading.Event()

        def offer(item) -> bool:
            """Put with cancellation: False once the consumer is gone."""
            while not cancelled.is_set():
                try:
                    handoff.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def produce() -> None:
            try:
                for batch in self._iter_batches_sync(order, batch_size, drop_last):
                    if not offer(batch):
                        return
                offer(done)
            except BaseException as error:  # surface in the consumer
                offer(error)

        producer = threading.Thread(
            target=produce, name="batch-prefetch", daemon=True
        )
        producer.start()
        try:
            while True:
                item = handoff.get()
                if item is done:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            cancelled.set()
            while not handoff.empty():  # unblock a producer stuck on put
                try:
                    handoff.get_nowait()
                except queue.Empty:
                    break
            producer.join(timeout=5.0)

    def feature_matrix(self, groups: Sequence[str]) -> np.ndarray:
        """Flat float matrix of all features in ``groups`` (for GBDT)."""
        names: List[str] = self.schema.feature_names(*groups)
        return self.table.to_matrix(names)
