"""Feature schema describing the inputs of the ATNN towers.

The paper partitions raw features into three groups:

* ``user``         — user profiles (19 raw features on Tmall),
* ``item_profile`` — item profiles, available for new arrivals (38 raw),
* ``item_stat``    — item statistics, *missing* for new arrivals (46 raw).

A :class:`FeatureSchema` records, for each feature, its group, whether it is
categorical (with vocabulary size and embedding dimension) or numeric, and
exposes per-group views used to wire up the towers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "GROUP_USER",
    "GROUP_ITEM_PROFILE",
    "GROUP_ITEM_STAT",
    "CategoricalFeature",
    "NumericFeature",
    "SequenceFeature",
    "FeatureSchema",
]

GROUP_USER = "user"
GROUP_ITEM_PROFILE = "item_profile"
GROUP_ITEM_STAT = "item_stat"

_VALID_GROUPS = (GROUP_USER, GROUP_ITEM_PROFILE, GROUP_ITEM_STAT)


@dataclass(frozen=True)
class CategoricalFeature:
    """A categorical feature embedded into a dense vector.

    Attributes
    ----------
    name:
        Unique feature name.
    vocab_size:
        Number of distinct ids (indices must lie in ``[0, vocab_size)``).
    embedding_dim:
        Width of the learned embedding (the paper uses 16 for user id,
        8 for occupation, 6 for item category, ...).
    group:
        One of ``user``, ``item_profile``, ``item_stat``.
    """

    name: str
    vocab_size: int
    embedding_dim: int
    group: str

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError(f"{self.name}: vocab_size must be positive")
        if self.embedding_dim <= 0:
            raise ValueError(f"{self.name}: embedding_dim must be positive")
        if self.group not in _VALID_GROUPS:
            raise ValueError(
                f"{self.name}: group must be one of {_VALID_GROUPS}, got {self.group!r}"
            )


@dataclass(frozen=True)
class NumericFeature:
    """A real-valued feature fed to the towers after standardisation."""

    name: str
    group: str

    def __post_init__(self) -> None:
        if self.group not in _VALID_GROUPS:
            raise ValueError(
                f"{self.name}: group must be one of {_VALID_GROUPS}, got {self.group!r}"
            )


@dataclass(frozen=True)
class SequenceFeature:
    """A multi-valued categorical feature (mean-pooled embedding bag).

    Models list-shaped profile attributes — e.g. a user's preferred
    categories, part of the paper's "purchase preference" profile family.
    Data convention: the column ``name`` holds a padded integer matrix of
    shape ``(rows, max_len)`` and the companion column
    ``{name}__mask`` holds the validity mask of the same shape.

    Attributes
    ----------
    name:
        Feature name.
    vocab_size:
        Number of distinct ids.
    embedding_dim:
        Width of the pooled embedding.
    max_len:
        Padded list length.
    group:
        One of ``user``, ``item_profile``, ``item_stat``.
    """

    name: str
    vocab_size: int
    embedding_dim: int
    max_len: int
    group: str

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError(f"{self.name}: vocab_size must be positive")
        if self.embedding_dim <= 0:
            raise ValueError(f"{self.name}: embedding_dim must be positive")
        if self.max_len <= 0:
            raise ValueError(f"{self.name}: max_len must be positive")
        if self.group not in _VALID_GROUPS:
            raise ValueError(
                f"{self.name}: group must be one of {_VALID_GROUPS}, got {self.group!r}"
            )

    @property
    def mask_name(self) -> str:
        """Name of the companion validity-mask column."""
        return f"{self.name}__mask"


class FeatureSchema:
    """An ordered collection of categorical and numeric features.

    Feature order is preserved; the towers concatenate inputs in schema
    order so that saved models remain loadable.
    """

    def __init__(
        self,
        categorical: List[CategoricalFeature],
        numeric: List[NumericFeature],
        sequence: Optional[List["SequenceFeature"]] = None,
    ) -> None:
        sequence = list(sequence) if sequence is not None else []
        names = (
            [f.name for f in categorical]
            + [f.name for f in numeric]
            + [f.name for f in sequence]
        )
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(f"duplicate feature names: {duplicates}")
        self.categorical = list(categorical)
        self.numeric = list(numeric)
        self.sequence = sequence

    # ------------------------------------------------------------------
    # Group views
    # ------------------------------------------------------------------
    def categorical_in(self, *groups: str) -> List[CategoricalFeature]:
        """Categorical features belonging to any of ``groups``, in order."""
        self._check_groups(groups)
        return [f for f in self.categorical if f.group in groups]

    def numeric_in(self, *groups: str) -> List[NumericFeature]:
        """Numeric features belonging to any of ``groups``, in order."""
        self._check_groups(groups)
        return [f for f in self.numeric if f.group in groups]

    def vocab_sizes(self, *groups: str) -> Dict[str, int]:
        """Mapping name → vocab size for categorical features in ``groups``."""
        return {f.name: f.vocab_size for f in self.categorical_in(*groups)}

    def embedding_dims(self, *groups: str) -> Dict[str, int]:
        """Mapping name → embedding dim for categorical features in ``groups``."""
        return {f.name: f.embedding_dim for f in self.categorical_in(*groups)}

    def numeric_names(self, *groups: str) -> List[str]:
        """Names of numeric features in ``groups``, in order."""
        return [f.name for f in self.numeric_in(*groups)]

    def sequence_in(self, *groups: str) -> List["SequenceFeature"]:
        """Sequence features belonging to any of ``groups``, in order."""
        self._check_groups(groups)
        return [f for f in self.sequence if f.group in groups]

    def input_width(self, *groups: str) -> int:
        """Width of the concatenated tower input.

        Embedded categoricals + numerics + one pooled embedding per
        sequence feature.
        """
        emb = sum(f.embedding_dim for f in self.categorical_in(*groups))
        seq = sum(f.embedding_dim for f in self.sequence_in(*groups))
        return emb + seq + len(self.numeric_in(*groups))

    def feature_names(self, *groups: str) -> List[str]:
        """Names of *flat* features in ``groups`` (categoricals first).

        Sequence features are excluded: their columns are 2-D and do not
        fit flat-matrix consumers (GBDT, the flat CTR baselines).  Use
        :meth:`sequence_in` / :meth:`all_column_names` for them.
        """
        return [f.name for f in self.categorical_in(*groups)] + self.numeric_names(
            *groups
        )

    def all_column_names(self, *groups: str) -> List[str]:
        """Every data column in ``groups`` including sequence + mask pairs."""
        names = self.feature_names(*groups)
        for feature in self.sequence_in(*groups):
            names.append(feature.name)
            names.append(feature.mask_name)
        return names

    @staticmethod
    def _check_groups(groups: Tuple[str, ...]) -> None:
        unknown = [g for g in groups if g not in _VALID_GROUPS]
        if unknown:
            raise ValueError(f"unknown feature groups: {unknown}")

    def __repr__(self) -> str:
        return (
            f"FeatureSchema(categorical={len(self.categorical)}, "
            f"numeric={len(self.numeric)}, sequence={len(self.sequence)})"
        )
