"""Cold-start feature handling.

For a brand-new item the statistics store has no rows, so the serving-time
feature join produces empty statistic columns.  :func:`zero_statistics`
reproduces that condition on an arbitrary feature dict: every ``item_stat``
column is replaced with zeros (the mean, since statistic columns are
standardised at generation time), leaving profiles and user features
untouched.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.data.schema import GROUP_ITEM_STAT, FeatureSchema

__all__ = ["zero_statistics"]


def zero_statistics(
    schema: FeatureSchema, features: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Return a copy of ``features`` with statistic columns zeroed.

    Parameters
    ----------
    schema:
        The feature schema identifying the ``item_stat`` group.
    features:
        Feature columns (shared, not copied, for untouched columns).
    """
    stat_names = set(schema.numeric_names(GROUP_ITEM_STAT)) | {
        f.name for f in schema.categorical_in(GROUP_ITEM_STAT)
    }
    result: Dict[str, np.ndarray] = {}
    for name, column in features.items():
        if name in stat_names:
            result[name] = np.zeros_like(column)
        else:
            result[name] = column
    return result
