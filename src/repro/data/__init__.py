"""Datasets, feature schemas, encoders and synthetic worlds."""

from repro.data.cold_start import zero_statistics
from repro.data.dataset import Batch, FeatureTable, InteractionDataset
from repro.data.encoders import HashEncoder, StandardScaler, VocabEncoder
from repro.data.io import (
    load_feature_table,
    load_interactions,
    save_feature_table,
    save_interactions,
)
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
    SequenceFeature,
)
from repro.data.splits import split_indices, train_test_split

__all__ = [
    "Batch",
    "FeatureTable",
    "InteractionDataset",
    "HashEncoder",
    "StandardScaler",
    "VocabEncoder",
    "GROUP_ITEM_PROFILE",
    "GROUP_ITEM_STAT",
    "GROUP_USER",
    "CategoricalFeature",
    "FeatureSchema",
    "NumericFeature",
    "SequenceFeature",
    "split_indices",
    "train_test_split",
    "zero_statistics",
    "load_feature_table",
    "load_interactions",
    "save_feature_table",
    "save_interactions",
]
