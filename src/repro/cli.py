"""Command-line interface: ``atnn-repro <experiment> [--preset NAME]``.

Examples
--------
::

    atnn-repro list
    atnn-repro table1 --preset smoke
    atnn-repro all --preset default --output results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments import available_experiments, run_all, run_experiment
from repro.utils.serialization import save_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="atnn-repro",
        description=(
            "Reproduce the experiments of 'ATNN: Adversarial Two-Tower "
            "Neural Network for New Item's Popularity Prediction in "
            "E-commerce' (ICDE 2021)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name ('list' to enumerate, 'all' to run every "
            "table): " + ", ".join(available_experiments())
        ),
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=["smoke", "default", "paper"],
        help="size preset (smoke: seconds, default: minutes, paper: hours)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for JSON result dumps (optional)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for name in available_experiments():
            print(name)
        return 0

    if args.experiment == "all":
        results = run_all(args.preset, verbose=True)
        if args.output is not None:
            for name, result in results.items():
                if hasattr(result, "as_dict"):
                    save_json(result.as_dict(), args.output / f"{name}.json")
        return 0

    try:
        result = run_experiment(args.experiment, preset=args.preset)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    if args.output is not None and hasattr(result, "as_dict"):
        save_json(result.as_dict(), args.output / f"{args.experiment}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
