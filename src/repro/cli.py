"""Command-line interface: ``atnn-repro <experiment> [--preset NAME]``.

Examples
--------
::

    atnn-repro list
    atnn-repro table1 --preset smoke
    atnn-repro table1 --preset smoke --telemetry out.jsonl
    atnn-repro all --preset default --output results/ --log-level info
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments import available_experiments, run_all, run_experiment
from repro.obs import TelemetrySession, configure_logging
from repro.utils.serialization import save_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="atnn-repro",
        description=(
            "Reproduce the experiments of 'ATNN: Adversarial Two-Tower "
            "Neural Network for New Item's Popularity Prediction in "
            "E-commerce' (ICDE 2021)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name ('list' to enumerate, 'all' to run every "
            "table): " + ", ".join(available_experiments())
        ),
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=["smoke", "default", "paper"],
        help="size preset (smoke: seconds, default: minutes, paper: hours)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for JSON result dumps (optional)",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        help=(
            "write a JSONL telemetry report of the run (metrics, per-epoch "
            "losses, per-op autograd timings, spans) to this path"
        ),
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "arm the online model-quality monitor for the run: streaming "
            "AUC/calibration over serving outcomes, score-drift detection "
            "(PSI/KL), cold-start cohort tracking and threshold alerts; "
            "the summary prints at the end and quality/drift/coldstart/"
            "alert records land in the --telemetry report"
        ),
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help=(
            "arm the serving SLO tracker for the run: rolling error "
            "budgets and multi-window burn-rate alerts over request "
            "latency, availability and the streaming-AUC floor; the "
            "budget summary prints at the end and slo.* gauges land in "
            "--prometheus-out / --telemetry exports"
        ),
    )
    parser.add_argument(
        "--flight-out",
        type=Path,
        default=None,
        help=(
            "arm the serving flight recorder with this postmortem "
            "directory: recent per-request span trees are retained "
            "(slowest kept as tail exemplars) and a postmortem bundle "
            "is dumped when an alert fires or a request errors; replay "
            "bundles with 'python -m repro.obs.flight <bundle>'"
        ),
    )
    parser.add_argument(
        "--spool-dir",
        type=Path,
        default=None,
        help=(
            "spool mergeable telemetry snapshot frames to this directory "
            "while the run executes; a fleet collector (python -m "
            "repro.obs.agg <dir>) merges spools from several processes "
            "into one fleet-level view"
        ),
    )
    parser.add_argument(
        "--shard-label",
        default=None,
        help=(
            "name this process's shard for the run: stamped on request "
            "records, postmortem bundle names and spooled snapshot "
            "frames so merged fleet views can attribute state"
        ),
    )
    parser.add_argument(
        "--prometheus-out",
        type=Path,
        default=None,
        help=(
            "write the final metrics registry in Prometheus text "
            "exposition format to this path"
        ),
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help=(
            "write a Chrome Trace Event Format file (load in "
            "chrome://tracing or ui.perfetto.dev) of spans and autograd "
            "ops to this path"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable structured logging to stderr at this level",
    )
    parser.add_argument(
        "--fuse",
        action="store_true",
        help=(
            "apply the kernel-fusion pass to every trained model: "
            "Linear→ReLU stacks and DCN cross layers run as single fused "
            "autograd ops (see docs/performance.md); fusion coverage is "
            "reported via the autograd.fusion_hits counter"
        ),
    )
    parser.add_argument(
        "--n-workers",
        type=int,
        default=0,
        help=(
            "train with a multi-process data-parallel worker pool of this "
            "size (0 = in-process, the default; 1 reproduces in-process "
            "training bit for bit from a separate worker process); "
            "workers spool telemetry under --spool-dir when it is set"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "arm the runtime autograd sanitizer for the whole run "
            "(saved-buffer version checks + NaN/Inf taint tracking); "
            "a buffer-discipline violation aborts with a diagnostic"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.log_level is not None:
        configure_logging(args.log_level)

    if args.n_workers < 0:
        print(f"error: --n-workers must be >= 0, got {args.n_workers}", file=sys.stderr)
        return 2
    if args.fuse or args.n_workers:
        # Experiments build their trainers internally; route the knobs
        # through the ambient trainer defaults.
        from repro.core.trainer import set_trainer_defaults

        set_trainer_defaults(
            fuse=args.fuse,
            n_workers=args.n_workers,
            worker_spool_dir=(
                str(args.spool_dir) if args.spool_dir is not None else None
            ),
        )

    if args.experiment == "list":
        for name in available_experiments():
            print(name)
        return 0

    session: Optional[TelemetrySession] = None
    needs_session = (
        args.telemetry is not None
        or args.monitor
        or args.slo
        or args.flight_out is not None
        or args.trace_out is not None
        or args.prometheus_out is not None
        or args.spool_dir is not None
    )
    if needs_session:
        session = TelemetrySession(
            label=f"{args.experiment}:{args.preset}",
            monitor=args.monitor,
            trace_events=args.trace_out is not None,
            slo=args.slo,
            flight=args.flight_out is not None,
            postmortem_dir=args.flight_out,
            spool_dir=args.spool_dir,
            shard_label=args.shard_label,
        )
        session.start()
    sanitizer = None
    if args.sanitize:
        from repro.analysis import GradSanitizer

        sanitizer = GradSanitizer(track_nonfinite=True).enable()
    try:
        if args.experiment == "all":
            results = run_all(args.preset, verbose=True)
            if args.output is not None:
                for name, result in results.items():
                    if hasattr(result, "as_dict"):
                        save_json(result.as_dict(), args.output / f"{name}.json")
            return 0

        try:
            result = run_experiment(args.experiment, preset=args.preset)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        if args.output is not None and hasattr(result, "as_dict"):
            save_json(result.as_dict(), args.output / f"{args.experiment}.json")
        return 0
    finally:
        if sanitizer is not None:
            sanitizer.disable()
            print(
                "[sanitizer: "
                f"{sanitizer.stats['forward_ops']} ops checked, "
                f"{len(sanitizer.diagnostics)} finding(s)]"
            )
        if session is not None:
            session.stop()
            if session.monitor is not None:
                print(session.monitor.to_text())
            if session.slo is not None:
                print(session.slo.to_text())
            if session.flight is not None:
                print(session.flight.to_text())
                for bundle in session.flight.dumps:
                    print(f"[postmortem bundle written to {bundle}]")
            if args.telemetry is not None:
                session.write_jsonl(args.telemetry)
                print(f"[telemetry report written to {args.telemetry}]")
            if session.shipper is not None:
                print(
                    f"[telemetry snapshots spooled to {session.shipper.spool_path}]"
                )
            if args.prometheus_out is not None:
                args.prometheus_out.parent.mkdir(parents=True, exist_ok=True)
                args.prometheus_out.write_text(
                    session.registry.to_prometheus_text(), encoding="utf-8"
                )
                print(f"[prometheus metrics written to {args.prometheus_out}]")
            if args.trace_out is not None:
                session.write_chrome_trace(args.trace_out)
                print(f"[chrome trace written to {args.trace_out}]")


if __name__ == "__main__":
    sys.exit(main())
