"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package that
PEP 660 editable installs require; this shim lets ``pip install -e .`` fall
back to ``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
