"""Benchmark: ablations over ATNN's design choices (DESIGN.md section 5).

Three sweeps, each trained on a reduced world so the whole module stays
tractable:

* similarity weight lambda (0 disables the adversarial distillation),
* shared vs separate generator/encoder profile embeddings,
* cross-network depth (0 = plain fully connected towers).
"""

import pytest

from repro.data.synthetic import TmallConfig, generate_tmall_world
from repro.experiments import (
    run_cross_depth_ablation,
    run_embedding_sharing_ablation,
    run_lambda_ablation,
)
from repro.experiments.configs import get_preset


@pytest.fixture(scope="module")
def ablation_world(bench_preset):
    """A mid-size world shared by all ablation sweeps.

    Sized between smoke and default so that 9 model trainings finish in a
    few minutes while preserving the training-signal regime.
    """
    base = get_preset(bench_preset).tmall
    if bench_preset == "smoke":
        return generate_tmall_world(base)
    return generate_tmall_world(
        TmallConfig(
            n_users=1500,
            n_items=2000,
            n_new_items=600,
            n_interactions=60_000,
            seed=base.seed,
        )
    )


def test_lambda_ablation(benchmark, bench_preset, ablation_world, save_report):
    result = benchmark.pedantic(
        lambda: run_lambda_ablation(
            bench_preset, world=ablation_world, lambdas=(0.0, 0.1, 1.0)
        ),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_lambda", result.render())

    by_setting = {row.setting: row for row in result.rows}
    # Distillation on (lambda>0) must not hurt the cold-start path much,
    # and some positive lambda should be at least as good as lambda=0.
    best_positive = max(
        row.auc_generator for row in result.rows if row.setting != "lambda=0"
    )
    assert best_positive >= by_setting["lambda=0"].auc_generator - 0.01
    for row in result.rows:
        assert row.auc_generator > 0.55


def test_embedding_sharing_ablation(
    benchmark, bench_preset, ablation_world, save_report
):
    result = benchmark.pedantic(
        lambda: run_embedding_sharing_ablation(bench_preset, world=ablation_world),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_sharing", result.render())
    for row in result.rows:
        assert row.auc_generator > 0.55
        assert row.auc_encoder > 0.55


def test_cross_depth_ablation(benchmark, bench_preset, ablation_world, save_report):
    result = benchmark.pedantic(
        lambda: run_cross_depth_ablation(
            bench_preset, world=ablation_world, depths=(0, 2)
        ),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_cross_depth", result.render())
    rows = {row.setting: row for row in result.rows}
    assert rows["2 cross layers"].auc_encoder > 0.55
    assert rows["0 cross layers"].auc_encoder > 0.55
