"""Benchmark: Table IV — food-delivery offline experiment.

Trains the non-adversarial TNN-DCN comparator, evaluates both models on
new applicants (statistics zeroed) and asserts the paper's shape: the
multi-task ATNN reduces both VpPV MAE and GMV MAE (paper: -10.4% and
-16.5%).
"""

from repro.experiments import PAPER_TABLE4, run_table4


def test_table4_food_delivery_offline(
    benchmark, bench_preset, eleme_artifacts, save_report
):
    result = benchmark.pedantic(
        lambda: run_table4(
            bench_preset,
            world=eleme_artifacts.world,
            atnn_artifacts=eleme_artifacts,
        ),
        rounds=1,
        iterations=1,
    )

    report = result.render() + (
        f"\n\nPaper reference: TNN-DCN vppv={PAPER_TABLE4['TNN-DCN']['vppv_mae']} "
        f"gmv={PAPER_TABLE4['TNN-DCN']['gmv_mae']}; "
        f"ATNN vppv={PAPER_TABLE4['ATNN']['vppv_mae']} "
        f"gmv={PAPER_TABLE4['ATNN']['gmv_mae']}"
    )
    save_report("table4", report)

    assert result.atnn_vppv_mae < result.tnn_dcn_vppv_mae
    assert result.atnn_gmv_mae < result.tnn_dcn_gmv_mae
    assert result.vppv_improvement > 0.02, "VpPV improvement should be material"
    assert result.gmv_improvement > 0.02, "GMV improvement should be material"
    # VpPV MAE magnitude comparable to the paper's 0.069-0.077 band.
    assert 0.01 < result.atnn_vppv_mae < 0.2
