"""Benchmark: the O(1) popularity-scoring claim (Section III-D).

Measures per-item scoring cost for the stored-mean-user-vector path and
the exact O(N_U) pairwise path across growing user groups, asserting:

* the mean-vector cost stays flat while the pairwise cost grows;
* the two orderings agree (high Spearman correlation), so the cheap path
  loses no ranking quality.
"""

from repro.experiments import run_complexity


def test_popularity_scoring_complexity(
    benchmark, bench_preset, tmall_artifacts, save_report
):
    result = benchmark.pedantic(
        lambda: run_complexity(
            bench_preset,
            artifacts=tmall_artifacts,
            user_counts=(250, 500, 1000, 2000),
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    save_report("complexity", result.render())

    rows = result.rows
    assert len(rows) >= 2
    smallest, largest = rows[0], rows[-1]
    # Pairwise cost grows with the user count...
    assert largest.pairwise_seconds_per_item > 2.0 * smallest.pairwise_seconds_per_item
    # ...while the mean-vector cost does not (generous 3x slack for timer noise).
    assert (
        largest.mean_vector_seconds_per_item
        < 3.0 * smallest.mean_vector_seconds_per_item + 1e-6
    )
    # At the largest group the speedup is at least an order of magnitude.
    assert largest.speedup > 10.0
    # The cheap ranking agrees with the exact one.
    assert result.rank_agreement > 0.95
