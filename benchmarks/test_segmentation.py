"""Benchmark: user-preference segmentation (paper future work, Section VI).

Clusters the active-user group into taste segments in the model's vector
space and compares segmented popularity prediction with the paper's
single-mean-vector strategy.  Assertions:

* the segmented weighted-mean ranking is at least as informative as the
  single mean (within a small tolerance — they agree asymptotically);
* per-segment predicted scores genuinely track per-segment ground-truth
  popularity (the segments are real, not noise).
"""

from repro.experiments import run_segmentation


def test_user_segmentation(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_segmentation(bench_preset, artifacts=tmall_artifacts,
                                 n_segments=4),
        rounds=1,
        iterations=1,
    )
    save_report("segmentation", result.render())

    assert result.n_segments >= 2
    assert result.corr_segmented_mean > result.corr_single_mean - 0.05, (
        "segmented weighted mean must not lose ranking quality"
    )
    assert result.per_segment_corr > 0.25, (
        "per-segment predictions must track per-segment ground truth"
    )
    # The max aggregation trades overall correlation for niche discovery;
    # it must still carry signal.
    assert result.corr_segmented_max > 0.2
