"""Benchmark: Table II — commercial value of new-arrival popularity ranking.

Ranks all new arrivals with the O(1) popularity service, groups them into
quintiles, simulates 30 days of post-release behaviour and checks the
paper's shape: business indicators (IPV / AtF / GMV at 7/14/30 days)
decrease from the best-ranked group to the worst, with the top-20% group
best on every column.
"""

from repro.experiments import PAPER_TABLE2_TOP_GROUP, run_table2


def test_table2_business_value(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_table2(bench_preset, artifacts=tmall_artifacts),
        rounds=1,
        iterations=1,
    )

    report = result.render() + "\n\nPaper top-quintile reference: " + ", ".join(
        f"{key}={value}" for key, value in PAPER_TABLE2_TOP_GROUP.items()
    )
    save_report("table2", report)

    for metric in ("IPV", "AtF", "GMV"):
        for day in (7, 14, 30):
            column = result.panel.column(metric, day)
            groups = column[:-1]
            # Top group best on every column (the paper's headline claim).
            assert groups[0] == max(groups), f"top group not best for {metric}@{day}"
            # Clear separation: top group at least 1.5x the overall average.
            assert result.top_group_lift(metric, day) > 1.5
            # Decreasing trend, tolerating one mild inversion as in the
            # paper's own GMV column.
            assert result.panel.is_monotone(metric, day, tolerance=0.6), (
                f"{metric}@{day} not broadly decreasing: {groups}"
            )
