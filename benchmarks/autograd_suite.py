"""Machine-readable autograd benchmark suite (``BENCH_autograd.json``).

Measures the sparse-gradient fast path against the legacy dense path on an
embedding-heavy train step (large id vocabularies, batch 512) inside one
process, plus the float32 compute mode, the runtime sanitizer's
on-vs-off overhead and the serving engine's incremental refresh.  Round 2
adds the fused-kernel arms (graph-level ``fuse()`` substitution), the
buffer-arena arm, and the multi-process data-parallel trainer arm.  Emits
a JSON report consumed by the CI smoke job and per-op breakdowns (dense
vs sparse vs fused) via the ``repro.obs`` autograd profiler.

Run from the repository root::

    PYTHONPATH=src python benchmarks/autograd_suite.py --preset smoke

The regression check compares *speedup ratios* (sparse vs dense, fused vs
unfused, arena on vs off, N workers vs one — each measured inside the
same run) rather than absolute wall-time, so a committed baseline remains
meaningful across machines.  The parallel-scaling gate additionally
requires enough CPUs to host the workers; on a one-core runner the arm
still executes (correctness + overhead) but its ratio is informational::

    PYTHONPATH=src python benchmarks/autograd_suite.py --preset smoke \
        --baseline benchmarks/results/BENCH_autograd_smoke.json --max-regression 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.nn import Tensor, default_dtype, use_sparse_grads
from repro.nn.arena import BufferArena, use_arena
from repro.nn.fusion import fuse, fusion_hits, reset_fusion_hits
from repro.nn.layers.embedding import FeatureEmbeddings
from repro.nn.layers.linear import Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.obs import AutogradProfiler

RESULTS_DIR = Path(__file__).parent / "results"

# Fraction of ideal linear scaling the data-parallel trainer must reach
# when the machine has at least as many CPUs as workers: 0.625 * 4 = the
# ">= 2.5x at 4 workers" acceptance target.
PARALLEL_SCALING_FRACTION = 0.625

PRESETS = {
    # Smoke: seconds, for CI. Default: the committed reference numbers.
    "smoke": {
        "vocab_sizes": {"user_id": 50_000, "item_id": 30_000, "category": 500},
        "embedding_dims": {"user_id": 16, "item_id": 16, "category": 8},
        "batch_size": 512,
        "steps": 10,
        "warmup_steps": 2,
        "engine": {"n_users": 200, "n_items": 300, "n_new_items": 400,
                   "n_interactions": 4_000},
        "parallel": {
            "world": {"n_users": 500, "n_items": 400, "n_new_items": 100,
                      "n_interactions": 6_000},
            "workers": 2,
            "batch_size": 256,
            "tower": {"vector_dim": 16, "deep_dims": (32, 16),
                      "head_dims": (32,), "num_cross_layers": 1},
        },
    },
    "default": {
        "vocab_sizes": {"user_id": 200_000, "item_id": 100_000, "category": 1_000},
        "embedding_dims": {"user_id": 32, "item_id": 32, "category": 8},
        "batch_size": 512,
        "steps": 30,
        "warmup_steps": 5,
        "engine": {"n_users": 400, "n_items": 600, "n_new_items": 2_000,
                   "n_interactions": 8_000},
        "parallel": {
            "world": {"n_users": 2_000, "n_items": 1_500, "n_new_items": 500,
                      "n_interactions": 30_000},
            "workers": 4,
            "batch_size": 256,
            "tower": {"vector_dim": 32, "deep_dims": (128, 64),
                      "head_dims": (64,), "num_cross_layers": 2},
        },
    },
}


class _EmbeddingHeavyModel(Module):
    """Wide embedding bank + a thin head: the shape that stresses the
    embedding backward and the optimizer sweep."""

    def __init__(self, vocab_sizes, embedding_dims, rng) -> None:
        super().__init__()
        self.embeddings = FeatureEmbeddings(vocab_sizes, embedding_dims, rng=rng)
        self.head = Linear(self.embeddings.output_dim, 1, rng=rng)

    def forward(self, features) -> Tensor:
        return self.head(self.embeddings(features)).reshape((-1,))


def _make_batch(vocab_sizes, batch_size, rng):
    return {
        name: rng.integers(0, size, size=batch_size)
        for name, size in vocab_sizes.items()
    }


def _timed_steps(model, optimizer, batches, labels):
    """Run one train step per batch, returning per-step wall times."""
    times = []
    for features in batches:
        start = time.perf_counter()
        optimizer.zero_grad()
        loss = binary_cross_entropy_with_logits(model(features), labels)
        loss.backward()
        optimizer.step()
        times.append(time.perf_counter() - start)
    return times


def _run_variant(
    preset, sparse, dtype, profile=False, seed=0, sanitize=None,
    fused=False, arena=False,
):
    """Time the embedding-heavy train step for one engine configuration.

    ``sanitize`` arms the runtime sanitizer around the measured steps:
    ``"on"`` is the standard mode (version checks + NaN/Inf taint),
    ``"deep"`` additionally fingerprints every saved buffer
    (``check_content=True``).  ``None`` — the default, and the
    configuration every regression gate measures — runs the unpatched
    engine.  ``fused`` runs the graph-level ``fuse()`` substitution pass
    over the model before training; ``arena`` installs a
    :class:`~repro.nn.arena.BufferArena` so backward and optimizer
    scratch is pooled across steps.
    """
    config = PRESETS[preset]
    rng = np.random.default_rng(seed)
    sanitizer = None
    if sanitize is not None:
        from repro.analysis import GradSanitizer

        sanitizer = GradSanitizer(
            track_nonfinite=True, check_content=(sanitize == "deep")
        )
    with default_dtype(dtype):
        model = _EmbeddingHeavyModel(
            config["vocab_sizes"], config["embedding_dims"], rng
        )
        model.to_dtype(dtype)
        fusion_report = None
        if fused:
            reset_fusion_hits()
            fusion_report = fuse(model)
        optimizer = Adam(model.parameters(), lr=1e-3)
        labels = (rng.random(config["batch_size"]) < 0.3).astype(float)
        batches = [
            _make_batch(config["vocab_sizes"], config["batch_size"], rng)
            for _ in range(config["warmup_steps"] + config["steps"])
        ]
        profiler = AutogradProfiler() if profile else None
        arena_pool = BufferArena() if arena else None
        with use_sparse_grads(sparse), use_arena(arena_pool):
            _timed_steps(model, optimizer, batches[: config["warmup_steps"]], labels)
            if profiler is not None:
                profiler.enable()
            if sanitizer is not None:
                sanitizer.enable()
            try:
                times = _timed_steps(
                    model, optimizer, batches[config["warmup_steps"] :], labels
                )
            finally:
                if sanitizer is not None:
                    sanitizer.disable()
                if profiler is not None:
                    profiler.disable()
    result = {
        "seconds_per_step": float(np.mean(times)),
        "seconds_per_step_median": float(np.median(times)),
        "seconds_per_step_std": float(np.std(times)),
        "steps": len(times),
        "per_op": list(profiler.iter_records()) if profiler else None,
        "breakdown_text": profiler.to_text() if profiler else None,
    }
    if fused:
        result["fusion"] = {
            "modules_replaced": fusion_report.num_replaced,
            "hits": fusion_hits(),
        }
    if arena:
        result["arena"] = arena_pool.stats()
    return result


def _check_parity(preset):
    """Sparse and dense backward must agree exactly (float64)."""
    config = PRESETS[preset]
    rng = np.random.default_rng(1)
    batch = _make_batch(config["vocab_sizes"], config["batch_size"], rng)
    labels = (rng.random(config["batch_size"]) < 0.3).astype(float)

    def grads(sparse):
        model = _EmbeddingHeavyModel(
            config["vocab_sizes"], config["embedding_dims"],
            np.random.default_rng(2),
        )
        with use_sparse_grads(sparse):
            loss = binary_cross_entropy_with_logits(model(batch), labels)
            loss.backward()
        return [np.asarray(p.grad) for p in model.parameters()]

    for sparse_grad, dense_grad in zip(grads(True), grads(False)):
        np.testing.assert_allclose(sparse_grad, dense_grad, rtol=1e-10, atol=1e-12)
    return True


def _check_parity_fused(preset):
    """Fused and unfused graphs must produce matching gradients (float64)."""
    config = PRESETS[preset]
    rng = np.random.default_rng(1)
    batch = _make_batch(config["vocab_sizes"], config["batch_size"], rng)
    labels = (rng.random(config["batch_size"]) < 0.3).astype(float)

    def grads(fused):
        model = _EmbeddingHeavyModel(
            config["vocab_sizes"], config["embedding_dims"],
            np.random.default_rng(2),
        )
        if fused:
            fuse(model)
        with use_sparse_grads(False):
            loss = binary_cross_entropy_with_logits(model(batch), labels)
            loss.backward()
        return [np.asarray(p.grad) for p in model.parameters()]

    for fused_grad, plain_grad in zip(grads(True), grads(False)):
        np.testing.assert_allclose(fused_grad, plain_grad, rtol=1e-10, atol=1e-12)
    return True


def _bench_parallel(preset):
    """Epoch wall-time of the data-parallel trainer: one worker vs N.

    Both runs use the same :class:`~repro.nn.parallel.WorkerPool`
    machinery (shared-memory parameter slab, pipe protocol), so the
    ratio isolates *scaling*, not in-process-vs-IPC overhead.  An epoch
    covers the full dataset in either configuration.  On machines with
    fewer CPUs than workers the measurement still runs — it then mostly
    shows the cost of time-slicing — and the regression gate downgrades
    to informational (see :func:`check_regression`).
    """
    from repro.core import TowerConfig, TwoTowerModel, TwoTowerTrainer
    from repro.data.synthetic import TmallConfig, generate_tmall_world

    config = PRESETS[preset]["parallel"]
    world = generate_tmall_world(TmallConfig(seed=2, **config["world"]))
    tower = TowerConfig(**config["tower"])

    def run(workers):
        model = TwoTowerModel(world.schema, tower, rng=np.random.default_rng(1))
        trainer = TwoTowerTrainer(
            epochs=1, batch_size=config["batch_size"], lr=1e-3,
            n_workers=workers, seed=0,
        )
        start = time.perf_counter()
        history = trainer.fit(model, world.interactions)
        seconds = time.perf_counter() - start
        return seconds, float(history.series("loss")[-1])

    one_seconds, one_loss = run(1)
    n_seconds, n_loss = run(config["workers"])
    return {
        "workers": config["workers"],
        "cpu_count": os.cpu_count(),
        "rows": int(len(world.interactions)),
        "batch_size": config["batch_size"],
        "one_worker_epoch_seconds": one_seconds,
        "n_worker_epoch_seconds": n_seconds,
        "speedup_n_vs_one": one_seconds / max(n_seconds, 1e-12),
        "one_worker_loss": one_loss,
        "n_worker_loss": n_loss,
    }


def _bench_engine_refresh(preset):
    """Full vs incremental serving refresh after a small event burst."""
    from repro.core import ATNN, TowerConfig
    from repro.data.synthetic import TmallConfig, generate_tmall_world
    from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream

    sizes = PRESETS[preset]["engine"]
    world = generate_tmall_world(TmallConfig(seed=2, **sizes))
    model = ATNN(
        world.schema,
        TowerConfig(vector_dim=16, deep_dims=(32, 16), head_dims=(32,),
                    num_cross_layers=1),
        rng=np.random.default_rng(0),
    )
    engine = RealTimeEngine(
        model, world.new_items, world.active_user_group(0.25),
        EngineConfig(warm_view_threshold=5),
    )
    engine.refresh()
    rng = np.random.default_rng(3)
    touched = np.arange(10)

    def ingest():
        engine.ingest(
            generate_event_stream(world, touched, n_events=200, rng=rng)
        )

    ingest()
    start = time.perf_counter()
    engine.refresh(full=True)
    full_seconds = time.perf_counter() - start

    ingest()
    start = time.perf_counter()
    engine.refresh()
    incremental_seconds = time.perf_counter() - start
    return {
        "catalogue_slots": int(len(world.new_items)),
        "touched_slots": int(touched.size),
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": full_seconds / max(incremental_seconds, 1e-12),
    }


def run_suite(preset: str) -> dict:
    config = PRESETS[preset]
    print(f"[autograd-suite] preset={preset} "
          f"vocab={sum(config['vocab_sizes'].values())} "
          f"batch={config['batch_size']} steps={config['steps']}")

    print("[autograd-suite] parity: sparse vs dense gradients (float64) ...")
    parity = _check_parity(preset)
    print("[autograd-suite] parity: fused vs unfused gradients (float64) ...")
    fused_parity = _check_parity_fused(preset)

    print("[autograd-suite] dense float64 (legacy path) ...")
    dense_f64 = _run_variant(preset, sparse=False, dtype=np.float64, profile=True)  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    print(f"  {dense_f64['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float64 (fast path) ...")
    sparse_f64 = _run_variant(preset, sparse=True, dtype=np.float64, profile=True)  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    print(f"  {sparse_f64['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float32 ...")
    sparse_f32 = _run_variant(preset, sparse=True, dtype=np.float32)
    print(f"  {sparse_f32['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float32 + fused kernels ...")
    fused_f32 = _run_variant(preset, sparse=True, dtype=np.float32, fused=True)
    print(f"  {fused_f32['seconds_per_step'] * 1e3:.2f} ms/step "
          f"(fusion hits: {fused_f32['fusion']['hits']})")
    print("[autograd-suite] sparse float32 + fused kernels + arena ...")
    fused_arena_f32 = _run_variant(
        preset, sparse=True, dtype=np.float32, fused=True, arena=True
    )
    print(f"  {fused_arena_f32['seconds_per_step'] * 1e3:.2f} ms/step "
          f"(arena reuses: {fused_arena_f32['arena']['reuses']})")
    # One profiled fused run for the per-op breakdown artifact only — the
    # profiler's wrappers perturb timing, so the gated arms above run
    # unpatched.
    fused_profiled = _run_variant(
        preset, sparse=True, dtype=np.float32, fused=True, profile=True
    )

    # Sanitizer overhead: the "off" row is the sparse float64 measurement
    # above (the unpatched engine the regression gate scores), so arming
    # the sanitizer can never perturb the gated number.
    print("[autograd-suite] sparse float64 + sanitizer ...")
    sanitized = _run_variant(preset, sparse=True, dtype=np.float64, sanitize="on")  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    print(f"  {sanitized['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float64 + sanitizer (deep) ...")
    sanitized_deep = _run_variant(
        preset, sparse=True, dtype=np.float64, sanitize="deep"  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    )
    print(f"  {sanitized_deep['seconds_per_step'] * 1e3:.2f} ms/step")

    print("[autograd-suite] serving refresh full vs incremental ...")
    engine = _bench_engine_refresh(preset)
    print(f"  full {engine['full_seconds'] * 1e3:.2f} ms vs incremental "
          f"{engine['incremental_seconds'] * 1e3:.2f} ms "
          f"({engine['speedup']:.1f}x)")

    print("[autograd-suite] data-parallel trainer: 1 worker vs "
          f"{config['parallel']['workers']} ...")
    parallel = _bench_parallel(preset)
    print(f"  {parallel['one_worker_epoch_seconds']:.2f}s vs "
          f"{parallel['n_worker_epoch_seconds']:.2f}s per epoch "
          f"({parallel['speedup_n_vs_one']:.2f}x on "
          f"{parallel['cpu_count']} CPUs)")

    timing_keys = ("seconds_per_step", "seconds_per_step_median",
                   "seconds_per_step_std", "steps")
    speedup = dense_f64["seconds_per_step"] / sparse_f64["seconds_per_step"]
    report = {
        "preset": preset,
        "config": {k: config[k] for k in
                   ("vocab_sizes", "embedding_dims", "batch_size", "steps")},
        "gradcheck_parity": parity,
        "gradcheck_parity_fused": fused_parity,
        "train_step": {
            "dense_f64": {k: dense_f64[k] for k in timing_keys},
            "sparse_f64": {k: sparse_f64[k] for k in timing_keys},
            "sparse_f32": {k: sparse_f32[k] for k in timing_keys},
            "fused_f32": {k: fused_f32[k] for k in timing_keys},
            "fused_arena_f32": {k: fused_arena_f32[k] for k in timing_keys},
            "speedup_sparse_vs_dense": speedup,
            "speedup_f32_vs_f64": (
                sparse_f64["seconds_per_step"] / sparse_f32["seconds_per_step"]
            ),
            # Medians, not means: the fused/arena deltas are a few hundred
            # microseconds, where one scheduler hiccup in a 30-step run
            # visibly skews a mean.
            "speedup_fused_vs_unfused": (
                sparse_f32["seconds_per_step_median"]
                / fused_f32["seconds_per_step_median"]
            ),
            "speedup_fused_arena_vs_unfused": (
                sparse_f32["seconds_per_step_median"]
                / fused_arena_f32["seconds_per_step_median"]
            ),
        },
        "fusion": fused_f32["fusion"],
        "arena": fused_arena_f32["arena"],
        "parallel": parallel,
        "sanitizer": {
            "off": {k: sparse_f64[k] for k in
                    ("seconds_per_step", "seconds_per_step_median",
                     "seconds_per_step_std", "steps")},
            "on": {k: sanitized[k] for k in
                   ("seconds_per_step", "seconds_per_step_median",
                    "seconds_per_step_std", "steps")},
            "deep": {k: sanitized_deep[k] for k in
                     ("seconds_per_step", "seconds_per_step_median",
                      "seconds_per_step_std", "steps")},
            "overhead_on_vs_off": (
                sanitized["seconds_per_step"] / sparse_f64["seconds_per_step"]
            ),
            "overhead_deep_vs_off": (
                sanitized_deep["seconds_per_step"] / sparse_f64["seconds_per_step"]
            ),
        },
        "per_op": {
            "dense_f64": dense_f64["per_op"],
            "sparse_f64": sparse_f64["per_op"],
            "fused_f32": fused_profiled["per_op"],
        },
        "serving_refresh": engine,
    }
    print(f"[autograd-suite] sparse-vs-dense speedup: {speedup:.2f}x")
    print(f"[autograd-suite] fused-vs-unfused speedup: "
          f"{report['train_step']['speedup_fused_vs_unfused']:.2f}x "
          f"(+arena: "
          f"{report['train_step']['speedup_fused_arena_vs_unfused']:.2f}x)")
    breakdowns = {
        "dense_f64": dense_f64["breakdown_text"],
        "sparse_f64": sparse_f64["breakdown_text"],
        "fused_f32": fused_profiled["breakdown_text"],
    }
    return report, breakdowns


def check_regression(report: dict, baseline_path: Path, max_regression: float) -> bool:
    """True when no measured speedup ratio has collapsed vs the baseline.

    Compares dimensionless in-run ratios (sparse vs dense, fused vs
    unfused, fused+arena vs unfused, N-worker vs 1-worker scaling) so the
    check is stable across machines of different absolute speed.  Ratios
    the baseline file predates are skipped with a note.  The parallel
    scaling gate only applies when both the baseline and the current run
    had at least as many CPUs as workers — on an oversubscribed runner
    the ratio measures the scheduler, not the trainer.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    gates = [
        ("speedup_sparse_vs_dense", "sparse-vs-dense"),
        ("speedup_fused_vs_unfused", "fused-vs-unfused"),
        ("speedup_fused_arena_vs_unfused", "fused+arena-vs-unfused"),
    ]
    passed = True
    for key, label in gates:
        reference = baseline["train_step"].get(key)
        if reference is None:
            print(f"[autograd-suite] {label}: no baseline ratio, skipped")
            continue
        measured = report["train_step"][key]
        floor = reference / max_regression
        verdict = "ok" if measured >= floor else "FAIL"
        print(f"[autograd-suite] regression check [{label}]: measured "
              f"{measured:.2f}x vs baseline {reference:.2f}x "
              f"(floor {floor:.2f}x) {verdict}")
        passed = passed and measured >= floor

    base_parallel = baseline.get("parallel") or {}
    parallel = report.get("parallel")
    if parallel is None:
        print("[autograd-suite] parallel scaling: arm not run, skipped")
    else:
        workers = parallel["workers"]
        measured = parallel["speedup_n_vs_one"]
        if (parallel.get("cpu_count") or 0) < workers:
            print(f"[autograd-suite] parallel scaling: informational only "
                  f"({measured:.2f}x at {workers} workers on "
                  f"{parallel.get('cpu_count')} CPUs — the gate needs >= "
                  f"{workers} CPUs)")
        else:
            # Near-linear floor from the acceptance target (>= 2.5x at 4
            # workers, i.e. 62.5% of ideal), machine-independent.
            floor = PARALLEL_SCALING_FRACTION * workers
            # A baseline measured with enough CPUs tightens the floor
            # to its own ratio / max_regression.
            if (base_parallel.get("cpu_count") or 0) >= workers:
                floor = max(
                    floor, base_parallel["speedup_n_vs_one"] / max_regression
                )
            verdict = "ok" if measured >= floor else "FAIL"
            print(f"[autograd-suite] regression check [parallel x{workers}]: "
                  f"measured {measured:.2f}x (floor {floor:.2f}x) {verdict}")
            passed = passed and measured >= floor
    if not report.get("gradcheck_parity_fused", False):
        print("[autograd-suite] FAIL: fused gradcheck parity did not hold")
        passed = False
    return passed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="Report path; defaults to BENCH_autograd.json "
             "(BENCH_autograd_smoke.json for --preset smoke).",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="Committed BENCH_autograd.json to check for regressions against.",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="Fail when the speedup ratio drops below baseline / this factor.",
    )
    parser.add_argument(
        "--skip-breakdown-artifacts", action="store_true",
        help="Do not (re)write the per-op breakdown text artifacts.",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        name = (
            "BENCH_autograd_smoke.json" if args.preset == "smoke"
            else "BENCH_autograd.json"
        )
        args.output = RESULTS_DIR / name

    report, breakdowns = run_suite(args.preset)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[autograd-suite] wrote {args.output}")

    if not args.skip_breakdown_artifacts:
        breakdown = (
            "dense (legacy np.add.at) embedding-heavy train step\n"
            f"{breakdowns['dense_f64']}\n\n"
            "sparse (SparseGrad fast path) embedding-heavy train step\n"
            f"{breakdowns['sparse_f64']}\n\n"
            "fused (embedding-bag + BCE kernels, float32) embedding-heavy "
            "train step\n"
            f"{breakdowns['fused_f32']}\n"
        )
        path = RESULTS_DIR / "autograd_sparse_op_breakdown.txt"
        path.write_text(breakdown, encoding="utf-8")
        print(f"[autograd-suite] wrote {path}")

    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"[autograd-suite] FAIL: baseline {args.baseline} not found")
            return 1
        if not check_regression(report, args.baseline, args.max_regression):
            print("[autograd-suite] FAIL: speedup regressed beyond the "
                  f"allowed {args.max_regression}x factor")
            return 1
        print("[autograd-suite] regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
