"""Machine-readable autograd benchmark suite (``BENCH_autograd.json``).

Measures the sparse-gradient fast path against the legacy dense path on an
embedding-heavy train step (large id vocabularies, batch 512) inside one
process, plus the float32 compute mode, the runtime sanitizer's
on-vs-off overhead and the serving engine's incremental refresh.  Emits a
JSON report consumed by the CI smoke job and
two per-op breakdowns (dense vs sparse) via the ``repro.obs`` autograd
profiler.

Run from the repository root::

    PYTHONPATH=src python benchmarks/autograd_suite.py --preset smoke

The regression check compares the *speedup ratio* (sparse vs dense in the
same run) rather than absolute wall-time, so a committed baseline remains
meaningful across machines::

    PYTHONPATH=src python benchmarks/autograd_suite.py --preset smoke \
        --baseline benchmarks/results/BENCH_autograd.json --max-regression 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.nn import Tensor, default_dtype, use_sparse_grads
from repro.nn.layers.embedding import FeatureEmbeddings
from repro.nn.layers.linear import Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.obs import AutogradProfiler

RESULTS_DIR = Path(__file__).parent / "results"

PRESETS = {
    # Smoke: seconds, for CI. Default: the committed reference numbers.
    "smoke": {
        "vocab_sizes": {"user_id": 50_000, "item_id": 30_000, "category": 500},
        "embedding_dims": {"user_id": 16, "item_id": 16, "category": 8},
        "batch_size": 512,
        "steps": 10,
        "warmup_steps": 2,
        "engine": {"n_users": 200, "n_items": 300, "n_new_items": 400,
                   "n_interactions": 4_000},
    },
    "default": {
        "vocab_sizes": {"user_id": 200_000, "item_id": 100_000, "category": 1_000},
        "embedding_dims": {"user_id": 32, "item_id": 32, "category": 8},
        "batch_size": 512,
        "steps": 30,
        "warmup_steps": 5,
        "engine": {"n_users": 400, "n_items": 600, "n_new_items": 2_000,
                   "n_interactions": 8_000},
    },
}


class _EmbeddingHeavyModel(Module):
    """Wide embedding bank + a thin head: the shape that stresses the
    embedding backward and the optimizer sweep."""

    def __init__(self, vocab_sizes, embedding_dims, rng) -> None:
        super().__init__()
        self.embeddings = FeatureEmbeddings(vocab_sizes, embedding_dims, rng=rng)
        self.head = Linear(self.embeddings.output_dim, 1, rng=rng)

    def forward(self, features) -> Tensor:
        return self.head(self.embeddings(features)).reshape((-1,))


def _make_batch(vocab_sizes, batch_size, rng):
    return {
        name: rng.integers(0, size, size=batch_size)
        for name, size in vocab_sizes.items()
    }


def _timed_steps(model, optimizer, batches, labels):
    """Run one train step per batch, returning per-step wall times."""
    times = []
    for features in batches:
        start = time.perf_counter()
        optimizer.zero_grad()
        loss = binary_cross_entropy_with_logits(model(features), labels)
        loss.backward()
        optimizer.step()
        times.append(time.perf_counter() - start)
    return times


def _run_variant(preset, sparse, dtype, profile=False, seed=0, sanitize=None):
    """Time the embedding-heavy train step for one engine configuration.

    ``sanitize`` arms the runtime sanitizer around the measured steps:
    ``"on"`` is the standard mode (version checks + NaN/Inf taint),
    ``"deep"`` additionally fingerprints every saved buffer
    (``check_content=True``).  ``None`` — the default, and the
    configuration every regression gate measures — runs the unpatched
    engine.
    """
    config = PRESETS[preset]
    rng = np.random.default_rng(seed)
    sanitizer = None
    if sanitize is not None:
        from repro.analysis import GradSanitizer

        sanitizer = GradSanitizer(
            track_nonfinite=True, check_content=(sanitize == "deep")
        )
    with default_dtype(dtype):
        model = _EmbeddingHeavyModel(
            config["vocab_sizes"], config["embedding_dims"], rng
        )
        model.to_dtype(dtype)
        optimizer = Adam(model.parameters(), lr=1e-3)
        labels = (rng.random(config["batch_size"]) < 0.3).astype(float)
        batches = [
            _make_batch(config["vocab_sizes"], config["batch_size"], rng)
            for _ in range(config["warmup_steps"] + config["steps"])
        ]
        profiler = AutogradProfiler() if profile else None
        with use_sparse_grads(sparse):
            _timed_steps(model, optimizer, batches[: config["warmup_steps"]], labels)
            if profiler is not None:
                profiler.enable()
            if sanitizer is not None:
                sanitizer.enable()
            try:
                times = _timed_steps(
                    model, optimizer, batches[config["warmup_steps"] :], labels
                )
            finally:
                if sanitizer is not None:
                    sanitizer.disable()
                if profiler is not None:
                    profiler.disable()
    return {
        "seconds_per_step": float(np.mean(times)),
        "seconds_per_step_median": float(np.median(times)),
        "seconds_per_step_std": float(np.std(times)),
        "steps": len(times),
        "per_op": list(profiler.iter_records()) if profiler else None,
        "breakdown_text": profiler.to_text() if profiler else None,
    }


def _check_parity(preset):
    """Sparse and dense backward must agree exactly (float64)."""
    config = PRESETS[preset]
    rng = np.random.default_rng(1)
    batch = _make_batch(config["vocab_sizes"], config["batch_size"], rng)
    labels = (rng.random(config["batch_size"]) < 0.3).astype(float)

    def grads(sparse):
        model = _EmbeddingHeavyModel(
            config["vocab_sizes"], config["embedding_dims"],
            np.random.default_rng(2),
        )
        with use_sparse_grads(sparse):
            loss = binary_cross_entropy_with_logits(model(batch), labels)
            loss.backward()
        return [np.asarray(p.grad) for p in model.parameters()]

    for sparse_grad, dense_grad in zip(grads(True), grads(False)):
        np.testing.assert_allclose(sparse_grad, dense_grad, rtol=1e-10, atol=1e-12)
    return True


def _bench_engine_refresh(preset):
    """Full vs incremental serving refresh after a small event burst."""
    from repro.core import ATNN, TowerConfig
    from repro.data.synthetic import TmallConfig, generate_tmall_world
    from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream

    sizes = PRESETS[preset]["engine"]
    world = generate_tmall_world(TmallConfig(seed=2, **sizes))
    model = ATNN(
        world.schema,
        TowerConfig(vector_dim=16, deep_dims=(32, 16), head_dims=(32,),
                    num_cross_layers=1),
        rng=np.random.default_rng(0),
    )
    engine = RealTimeEngine(
        model, world.new_items, world.active_user_group(0.25),
        EngineConfig(warm_view_threshold=5),
    )
    engine.refresh()
    rng = np.random.default_rng(3)
    touched = np.arange(10)

    def ingest():
        engine.ingest(
            generate_event_stream(world, touched, n_events=200, rng=rng)
        )

    ingest()
    start = time.perf_counter()
    engine.refresh(full=True)
    full_seconds = time.perf_counter() - start

    ingest()
    start = time.perf_counter()
    engine.refresh()
    incremental_seconds = time.perf_counter() - start
    return {
        "catalogue_slots": int(len(world.new_items)),
        "touched_slots": int(touched.size),
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": full_seconds / max(incremental_seconds, 1e-12),
    }


def run_suite(preset: str) -> dict:
    config = PRESETS[preset]
    print(f"[autograd-suite] preset={preset} "
          f"vocab={sum(config['vocab_sizes'].values())} "
          f"batch={config['batch_size']} steps={config['steps']}")

    print("[autograd-suite] parity: sparse vs dense gradients (float64) ...")
    parity = _check_parity(preset)

    print("[autograd-suite] dense float64 (legacy path) ...")
    dense_f64 = _run_variant(preset, sparse=False, dtype=np.float64, profile=True)  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    print(f"  {dense_f64['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float64 (fast path) ...")
    sparse_f64 = _run_variant(preset, sparse=True, dtype=np.float64, profile=True)  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    print(f"  {sparse_f64['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float32 ...")
    sparse_f32 = _run_variant(preset, sparse=True, dtype=np.float32)
    print(f"  {sparse_f32['seconds_per_step'] * 1e3:.2f} ms/step")

    # Sanitizer overhead: the "off" row is the sparse float64 measurement
    # above (the unpatched engine the regression gate scores), so arming
    # the sanitizer can never perturb the gated number.
    print("[autograd-suite] sparse float64 + sanitizer ...")
    sanitized = _run_variant(preset, sparse=True, dtype=np.float64, sanitize="on")  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    print(f"  {sanitized['seconds_per_step'] * 1e3:.2f} ms/step")
    print("[autograd-suite] sparse float64 + sanitizer (deep) ...")
    sanitized_deep = _run_variant(
        preset, sparse=True, dtype=np.float64, sanitize="deep"  # repro-lint: disable=ATN002 -- the bench matrix compares dtypes explicitly; float64 is this variant's subject, not a default
    )
    print(f"  {sanitized_deep['seconds_per_step'] * 1e3:.2f} ms/step")

    print("[autograd-suite] serving refresh full vs incremental ...")
    engine = _bench_engine_refresh(preset)
    print(f"  full {engine['full_seconds'] * 1e3:.2f} ms vs incremental "
          f"{engine['incremental_seconds'] * 1e3:.2f} ms "
          f"({engine['speedup']:.1f}x)")

    speedup = dense_f64["seconds_per_step"] / sparse_f64["seconds_per_step"]
    report = {
        "preset": preset,
        "config": {k: config[k] for k in
                   ("vocab_sizes", "embedding_dims", "batch_size", "steps")},
        "gradcheck_parity": parity,
        "train_step": {
            "dense_f64": {k: dense_f64[k] for k in
                          ("seconds_per_step", "seconds_per_step_median",
                           "seconds_per_step_std", "steps")},
            "sparse_f64": {k: sparse_f64[k] for k in
                           ("seconds_per_step", "seconds_per_step_median",
                            "seconds_per_step_std", "steps")},
            "sparse_f32": {k: sparse_f32[k] for k in
                           ("seconds_per_step", "seconds_per_step_median",
                            "seconds_per_step_std", "steps")},
            "speedup_sparse_vs_dense": speedup,
            "speedup_f32_vs_f64": (
                sparse_f64["seconds_per_step"] / sparse_f32["seconds_per_step"]
            ),
        },
        "sanitizer": {
            "off": {k: sparse_f64[k] for k in
                    ("seconds_per_step", "seconds_per_step_median",
                     "seconds_per_step_std", "steps")},
            "on": {k: sanitized[k] for k in
                   ("seconds_per_step", "seconds_per_step_median",
                    "seconds_per_step_std", "steps")},
            "deep": {k: sanitized_deep[k] for k in
                     ("seconds_per_step", "seconds_per_step_median",
                      "seconds_per_step_std", "steps")},
            "overhead_on_vs_off": (
                sanitized["seconds_per_step"] / sparse_f64["seconds_per_step"]
            ),
            "overhead_deep_vs_off": (
                sanitized_deep["seconds_per_step"] / sparse_f64["seconds_per_step"]
            ),
        },
        "per_op": {
            "dense_f64": dense_f64["per_op"],
            "sparse_f64": sparse_f64["per_op"],
        },
        "serving_refresh": engine,
    }
    print(f"[autograd-suite] sparse-vs-dense speedup: {speedup:.2f}x")
    return report, dense_f64["breakdown_text"], sparse_f64["breakdown_text"]


def check_regression(report: dict, baseline_path: Path, max_regression: float) -> bool:
    """True when the measured speedup has not collapsed vs the baseline.

    Compares the dimensionless sparse-vs-dense speedup ratio so the check
    is stable across machines of different absolute speed.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    reference = baseline["train_step"]["speedup_sparse_vs_dense"]
    measured = report["train_step"]["speedup_sparse_vs_dense"]
    floor = reference / max_regression
    print(f"[autograd-suite] regression check: measured speedup "
          f"{measured:.2f}x vs baseline {reference:.2f}x "
          f"(floor {floor:.2f}x)")
    return measured >= floor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output", type=Path, default=RESULTS_DIR / "BENCH_autograd.json"
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="Committed BENCH_autograd.json to check for regressions against.",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="Fail when the speedup ratio drops below baseline / this factor.",
    )
    parser.add_argument(
        "--skip-breakdown-artifacts", action="store_true",
        help="Do not (re)write the per-op breakdown text artifacts.",
    )
    args = parser.parse_args(argv)

    report, dense_text, sparse_text = run_suite(args.preset)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[autograd-suite] wrote {args.output}")

    if not args.skip_breakdown_artifacts:
        breakdown = (
            "dense (legacy np.add.at) embedding-heavy train step\n"
            f"{dense_text}\n\n"
            "sparse (SparseGrad fast path) embedding-heavy train step\n"
            f"{sparse_text}\n"
        )
        path = RESULTS_DIR / "autograd_sparse_op_breakdown.txt"
        path.write_text(breakdown, encoding="utf-8")
        print(f"[autograd-suite] wrote {path}")

    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"[autograd-suite] FAIL: baseline {args.baseline} not found")
            return 1
        if not check_regression(report, args.baseline, args.max_regression):
            print("[autograd-suite] FAIL: speedup regressed beyond the "
                  f"allowed {args.max_regression}x factor")
            return 1
        print("[autograd-suite] regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
