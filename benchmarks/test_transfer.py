"""Benchmark: the movie-recommendation transfer scenario (future work).

Runs the Table I protocol on the synthetic movie world with the *same*
model code used for e-commerce.  Shape assertions: ATNN's generator keeps
most of its accuracy without statistics while the TNN-DCN baseline
collapses, and the O(1) popularity service ranks unreleased titles in
line with ground truth.
"""

from repro.experiments import run_transfer


def test_movie_transfer(benchmark, bench_preset, save_report):
    result = benchmark.pedantic(
        lambda: run_transfer(bench_preset),
        rounds=1,
        iterations=1,
    )
    save_report("transfer_movies", result.render())

    atnn = result.table.row("ATNN")
    baseline = result.table.row("TNN-DCN")
    assert atnn.degradation > baseline.degradation
    assert atnn.auc_profile_only > baseline.auc_profile_only
    assert atnn.degradation > -0.15, "ATNN must keep most of its accuracy"
    assert result.popularity_rank_corr > 0.4
