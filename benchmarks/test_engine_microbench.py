"""Micro-benchmarks of the substrate kernels.

These time the hot loops that dominate the table pipelines — tower
forward/backward passes, the O(1) scoring kernel, exact AUC and GBDT
fitting — with proper repetition (they are cheap enough to run many
rounds, unlike the table pipelines).
"""

import numpy as np
import pytest

from repro.core import ATNN, TowerConfig
from repro.data.synthetic import TmallConfig, generate_tmall_world
from repro.gbdt import GBDTClassifier
from repro.metrics import roc_auc
from repro.nn.losses import binary_cross_entropy
from repro.nn.optim import Adam


@pytest.fixture(scope="module")
def micro_world():
    return generate_tmall_world(
        TmallConfig(
            n_users=400, n_items=600, n_new_items=200, n_interactions=8_000, seed=2
        )
    )


@pytest.fixture(scope="module")
def micro_model(micro_world):
    return ATNN(
        micro_world.schema,
        TowerConfig(vector_dim=16, deep_dims=(32, 16), head_dims=(32,),
                    num_cross_layers=2),
        rng=np.random.default_rng(0),
    )


def _batch(world, n=512):
    return {name: col[:n] for name, col in world.interactions.features.items()}


def test_bench_forward_pass(benchmark, micro_world, micro_model):
    """Encoder-path forward over a 512-row batch."""
    features = _batch(micro_world)
    micro_model.eval()
    benchmark(lambda: micro_model.predict_proba(features))


def test_bench_train_step(benchmark, micro_world, micro_model):
    """One full L_i forward + backward + Adam step."""
    features = _batch(micro_world)
    labels = micro_world.interactions.label("ctr")[:512]
    optimizer = Adam(micro_model.parameters(), lr=1e-3)
    micro_model.train()

    def step():
        optimizer.zero_grad()
        loss = binary_cross_entropy(micro_model(features), labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    benchmark(step)


def test_bench_train_step_profiled(benchmark, micro_world, micro_model, save_report):
    """The L_i train step under the per-op autograd profiler.

    Besides timing the profiled step, this writes a per-op time breakdown
    artifact (``benchmarks/results/autograd_op_breakdown.txt``) so a
    regression can be localised to one operator instead of the step as a
    whole.
    """
    from repro.obs import AutogradProfiler

    features = _batch(micro_world)
    labels = micro_world.interactions.label("ctr")[:512]
    optimizer = Adam(micro_model.parameters(), lr=1e-3)
    micro_model.train()

    def step():
        optimizer.zero_grad()
        loss = binary_cross_entropy(micro_model(features), labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    profiler = AutogradProfiler()
    with profiler:
        benchmark.pedantic(step, rounds=5, iterations=1)
    report = profiler.report()
    assert "matmul" in report and report["matmul"].backward_calls > 0
    save_report("autograd_op_breakdown", profiler.to_text())


def test_bench_o1_scoring_kernel(benchmark, micro_world, micro_model):
    """The pure serving kernel: score 10k pre-encoded item vectors."""
    from repro.core import PopularityPredictor

    predictor = PopularityPredictor(micro_model)
    predictor.fit_user_group(micro_world.active_user_group(0.25))
    item_vectors = np.random.default_rng(0).normal(
        size=(10_000, micro_model.config.vector_dim)
    )
    result = benchmark(lambda: predictor.score_item_vectors(item_vectors))
    assert result.shape == (10_000,)


def test_bench_exact_auc(benchmark):
    """Exact midrank AUC over 100k scored samples."""
    rng = np.random.default_rng(0)
    labels = (rng.random(100_000) < 0.3).astype(float)
    scores = rng.normal(size=100_000) + labels
    value = benchmark(lambda: roc_auc(labels, scores))
    assert value > 0.7


def test_bench_gbdt_fit(benchmark):
    """Fit a 10-tree GBDT on 10k x 20 features."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(10_000, 20))
    y = (X[:, 0] + X[:, 1] * X[:, 2] > 0).astype(float)

    def fit():
        model = GBDTClassifier(n_estimators=10, max_depth=4, random_state=0)
        model.fit(X, y)
        return model

    benchmark.pedantic(fit, rounds=3, iterations=1)
