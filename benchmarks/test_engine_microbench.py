"""Micro-benchmarks of the substrate kernels.

These time the hot loops that dominate the table pipelines — tower
forward/backward passes, the O(1) scoring kernel, exact AUC and GBDT
fitting — with proper repetition (they are cheap enough to run many
rounds, unlike the table pipelines).
"""

import numpy as np
import pytest

from repro.core import ATNN, TowerConfig
from repro.data.synthetic import TmallConfig, generate_tmall_world
from repro.gbdt import GBDTClassifier
from repro.metrics import roc_auc
from repro.nn.losses import binary_cross_entropy
from repro.nn.optim import Adam


@pytest.fixture(scope="module")
def micro_world():
    return generate_tmall_world(
        TmallConfig(
            n_users=400, n_items=600, n_new_items=200, n_interactions=8_000, seed=2
        )
    )


@pytest.fixture(scope="module")
def micro_model(micro_world):
    return ATNN(
        micro_world.schema,
        TowerConfig(vector_dim=16, deep_dims=(32, 16), head_dims=(32,),
                    num_cross_layers=2),
        rng=np.random.default_rng(0),
    )


def _batch(world, n=512):
    return {name: col[:n] for name, col in world.interactions.features.items()}


def test_bench_forward_pass(benchmark, micro_world, micro_model):
    """Encoder-path forward over a 512-row batch."""
    features = _batch(micro_world)
    micro_model.eval()
    benchmark(lambda: micro_model.predict_proba(features))


def test_bench_train_step(benchmark, micro_world, micro_model):
    """One full L_i forward + backward + Adam step."""
    features = _batch(micro_world)
    labels = micro_world.interactions.label("ctr")[:512]
    optimizer = Adam(micro_model.parameters(), lr=1e-3)
    micro_model.train()

    def step():
        optimizer.zero_grad()
        loss = binary_cross_entropy(micro_model(features), labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    benchmark(step)


def test_bench_train_step_profiled(benchmark, micro_world, micro_model, save_report):
    """The L_i train step under the per-op autograd profiler.

    Besides timing the profiled step, this writes a per-op time breakdown
    artifact (``benchmarks/results/autograd_op_breakdown.txt``) so a
    regression can be localised to one operator instead of the step as a
    whole.
    """
    from repro.obs import AutogradProfiler

    features = _batch(micro_world)
    labels = micro_world.interactions.label("ctr")[:512]
    optimizer = Adam(micro_model.parameters(), lr=1e-3)
    micro_model.train()

    def step():
        optimizer.zero_grad()
        loss = binary_cross_entropy(micro_model(features), labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    profiler = AutogradProfiler()
    with profiler:
        benchmark.pedantic(step, rounds=5, iterations=1)
    report = profiler.report()
    assert "matmul" in report and report["matmul"].backward_calls > 0
    save_report("autograd_op_breakdown", profiler.to_text())


def test_bench_o1_scoring_kernel(benchmark, micro_world, micro_model):
    """The pure serving kernel: score 10k pre-encoded item vectors."""
    from repro.core import PopularityPredictor

    predictor = PopularityPredictor(micro_model)
    predictor.fit_user_group(micro_world.active_user_group(0.25))
    item_vectors = np.random.default_rng(0).normal(
        size=(10_000, micro_model.config.vector_dim)
    )
    result = benchmark(lambda: predictor.score_item_vectors(item_vectors))
    assert result.shape == (10_000,)


def test_bench_exact_auc(benchmark):
    """Exact midrank AUC over 100k scored samples."""
    rng = np.random.default_rng(0)
    labels = (rng.random(100_000) < 0.3).astype(float)
    scores = rng.normal(size=100_000) + labels
    value = benchmark(lambda: roc_auc(labels, scores))
    assert value > 0.7


def test_bench_monitor_overhead(micro_world, micro_model, save_report, tmp_path):
    """Serving loop with observability armed vs off: <5% overhead.

    The monitor's contract is that it rides the serving hot path on
    vectorised batch updates; this times the identical loop — a
    production-shaped traffic mix of event ingestion, score refreshes
    and personalised queries (2 000 views per batch come from the order
    of two hundred k=10 recommendation requests) — bare, with the
    quality monitor, with the full stack (monitor + tracer + SLO
    tracker + flight recorder), and with the full stack plus a
    :class:`~repro.obs.agg.TelemetryShipper` spooling snapshot frames,
    asserting each armed layer keeps its min-of-rounds ratio under the
    shared 1.05 budget (the shipper is judged against the flight arm it
    rides on).  The measured numbers land in
    ``benchmarks/results/monitor_overhead.txt``.
    """
    import gc
    import time as _time
    from contextlib import ExitStack

    from repro.data.schema import GROUP_USER
    from repro.obs import (
        FlightRecorder,
        QualityMonitor,
        SLOTracker,
        TelemetryShipper,
        Tracer,
        default_serving_slos,
        register_request_observer,
        unregister_request_observer,
        use_flight_recorder,
        use_monitor,
        use_slo_tracker,
        use_tracer,
    )
    from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream

    rng = np.random.default_rng(7)
    catalogue = np.arange(len(micro_world.new_items))
    batches = [
        generate_event_stream(micro_world, catalogue, n_events=2_000, rng=rng)
        for _ in range(5)
    ]
    user_group = micro_world.active_user_group(0.25)
    user_names = micro_model.schema.all_column_names(GROUP_USER)
    query_rows = [
        {name: user_group.columns[name][i : i + 1] for name in user_names}
        for i in range(8)
    ]
    queries_per_batch = 192
    micro_model.eval()

    def serving_loop():
        """One round; returns the wall time of each batch segment."""
        engine = RealTimeEngine(
            micro_model,
            micro_world.new_items,
            user_group,
            EngineConfig(warm_view_threshold=20),
        )
        engine.refresh()
        durations = []
        for events in batches:
            start = _time.perf_counter()
            engine.ingest(events)
            engine.refresh()
            engine.top_k(10)
            for query in range(queries_per_batch):
                engine.recommend_for_user(
                    query_rows[query % len(query_rows)], 10
                )
            durations.append(_time.perf_counter() - start)
        return durations

    ARMS = ("baseline", "monitored", "flight", "shipped")
    spool_dir = tmp_path / "spool"

    def timed(arm):
        # sinks=() keeps rare-event alert I/O (measured in the alert
        # tests) and pytest's log capture out of the compute timing;
        # GC is paused so collection pauses don't land on one arm.  The
        # flight arm uses a latency SLO far above real latencies and an
        # AUC floor far below the untrained model's, so no burn-rate
        # alert (and thus no alert log I/O) fires mid-bench.
        gc.collect()
        gc.disable()
        try:
            with ExitStack() as stack:
                if arm in ("monitored", "flight", "shipped"):
                    stack.enter_context(use_monitor(QualityMonitor(sinks=())))
                if arm in ("flight", "shipped"):
                    stack.enter_context(use_tracer(Tracer()))
                    stack.enter_context(
                        use_slo_tracker(
                            SLOTracker(
                                default_serving_slos(
                                    latency_p99_seconds=60.0,
                                    auc_floor=0.01,
                                ),
                                sinks=(),
                            )
                        )
                    )
                    stack.enter_context(
                        use_flight_recorder(
                            FlightRecorder(capacity=256, auto_dump=False)
                        )
                    )
                if arm == "shipped":
                    # The flight stack plus snapshot shipping, so the
                    # shipped-vs-flight gap isolates the shipper itself:
                    # every request pays the observer pump (one clock
                    # read) and real frame flushes (monitor + SLO +
                    # tracer state serialised to the spool) land inside
                    # the timed segments.  No registry is activated —
                    # metrics recording is its own, independently
                    # chargeable cost and the flight arm runs without
                    # one.  The interval is far under the production
                    # default (2 s) so flushes actually occur, without
                    # modelling a flush rate no deployment would run.
                    shipper = TelemetryShipper(
                        spool_dir,
                        process_label="bench",
                        interval_seconds=0.25,
                    )
                    register_request_observer(shipper)
                    stack.callback(unregister_request_observer, shipper)
                return serving_loop()
        finally:
            gc.enable()

    for arm in ARMS:  # warm every path (first-call caches, allocator)
        timed(arm)
    # Per-segment minima across alternating rounds: background load can
    # only inflate a timing, so each segment's floor converges to the
    # true cost of that arm — a quiet window for any single round of a
    # segment suffices, and extra sampling can never hide a genuine
    # regression (the floors only move down, and all arms share them).
    floors = {arm: [np.inf] * len(batches) for arm in ARMS}

    def sample():
        for arm in ARMS:
            floors[arm] = [
                min(floor, duration)
                for floor, duration in zip(floors[arm], timed(arm))
            ]
        base = sum(floors["baseline"])
        return {
            arm: sum(floors[arm]) / base for arm in ARMS[1:]
        }

    for _ in range(5):
        ratios = sample()
    extra_rounds = 0
    while max(ratios.values()) >= 1.05 and extra_rounds < 10:
        ratios = sample()  # keep sampling while noisy
        extra_rounds += 1
    baseline = sum(floors["baseline"])
    monitored = sum(floors["monitored"])
    flight = sum(floors["flight"])
    shipped = sum(floors["shipped"])
    # The shipper rides an already-armed stack, so its own budget is
    # judged against the flight arm: shipped/flight isolates the pump +
    # flush cost from the (independently asserted) stack overhead.
    shipper_ratio = shipped / flight
    save_report(
        "monitor_overhead",
        "observability-armed serving overhead "
        f"(per-segment floors over {5 + extra_rounds} alternating rounds)\n"
        f"  baseline                     : {baseline * 1e3:.2f} ms\n"
        f"  monitored                    : {monitored * 1e3:.2f} ms "
        f"(ratio {ratios['monitored']:.4f})\n"
        f"  monitor+tracer+slo+flight    : {flight * 1e3:.2f} ms "
        f"(ratio {ratios['flight']:.4f})\n"
        f"  full stack + snapshot shipping: {shipped * 1e3:.2f} ms "
        f"(vs baseline {ratios['shipped']:.4f}, "
        f"vs flight {shipper_ratio:.4f})\n"
        f"  budget                       : ratio < 1.05 per armed layer",
    )
    assert ratios["monitored"] < 1.05, (
        f"quality monitor costs {100 * (ratios['monitored'] - 1):.1f}% on "
        f"the serving loop (budget 5%): baseline {baseline:.4f}s vs "
        f"{monitored:.4f}s"
    )
    assert ratios["flight"] < 1.05, (
        f"full observability stack costs {100 * (ratios['flight'] - 1):.1f}% "
        f"on the serving loop (budget 5%): baseline {baseline:.4f}s vs "
        f"{flight:.4f}s"
    )
    assert shipper_ratio < 1.05, (
        f"snapshot shipping costs {100 * (shipper_ratio - 1):.1f}% on top "
        f"of the armed stack (budget 5%): flight {flight:.4f}s vs "
        f"shipped {shipped:.4f}s"
    )


def test_bench_gbdt_fit(benchmark):
    """Fit a 10-tree GBDT on 10k x 20 features."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(10_000, 20))
    y = (X[:, 0] + X[:, 1] * X[:, 2] > 0).astype(float)

    def fit():
        model = GBDTClassifier(n_estimators=10, max_depth=4, random_state=0)
        model.fit(X, y)
        return model

    benchmark.pedantic(fit, rounds=3, iterations=1)
