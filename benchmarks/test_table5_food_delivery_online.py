"""Benchmark: Table V — food-delivery online recruitment experiment.

Both arms recruit the same number of new restaurants; realised 30-day
VpPV and GMV of the recruits are compared.  The paper reports +8.1% VpPV
and +14.7% GMV for ATNN over human experts; the assertions check the sign
on both metrics and that the realised magnitudes sit near the paper's
scale (VpPV ~0.27-0.29, GMV ~190-220 in the paper).
"""

from repro.experiments import PAPER_TABLE5, run_table5


def test_table5_food_delivery_online(
    benchmark, bench_preset, eleme_artifacts, save_report
):
    result = benchmark.pedantic(
        lambda: run_table5(
            bench_preset,
            world=eleme_artifacts.world,
            artifacts=eleme_artifacts,
        ),
        rounds=1,
        iterations=1,
    )

    report = result.render() + (
        f"\n\nPaper reference: expert vppv={PAPER_TABLE5['expert']['vppv']} "
        f"gmv={PAPER_TABLE5['expert']['gmv']}; "
        f"ATNN vppv={PAPER_TABLE5['atnn']['vppv']} "
        f"gmv={PAPER_TABLE5['atnn']['gmv']}"
    )
    save_report("table5", report)

    # Realised magnitudes near the paper's scale on every preset.
    assert 0.1 < result.atnn_vppv < 0.6
    assert 50 < result.atnn_gmv < 1500
    if bench_preset != "smoke":
        # The sign of the A/B result needs the default-or-larger training
        # budget; the smoke preset is a fast sanity pass only.
        assert result.atnn_vppv > result.expert_vppv, "ATNN must lift realised VpPV"
        assert result.atnn_gmv > result.expert_gmv, "ATNN must lift realised GMV"
