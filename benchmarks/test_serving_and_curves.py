"""Benchmarks: serving warm-up and ATNN training dynamics.

Two supplementary experiments beyond the paper's tables:

* **serving warm-up** — the deployed engine's ranking quality must rise
  as behaviour events stream in (generator path → encoder path with live
  statistics), quantifying the Section IV-D serving design;
* **training dynamics** — the adversarial game must converge: ``L_s``
  decreases and both paths' validation AUCs end above chance.
"""

from repro.experiments import run_serving_eval, run_training_curves


def test_serving_warmup(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_serving_eval(bench_preset, artifacts=tmall_artifacts),
        rounds=1,
        iterations=1,
    )
    save_report("serving_warmup", result.render())

    assert result.stages[0].warm_items == 0, "stage 0 must be all-cold"
    assert result.stages[-1].warm_items > 0, "events must warm some items"
    assert result.cold_quality > 0.2, "cold generator ranking must carry signal"
    # The lift shrinks as the cold ranking itself improves (a well-trained
    # generator leaves less headroom), so require a genuine but modest gain.
    assert result.warm_quality > result.cold_quality + 0.01, (
        "live statistics must sharpen the ranking"
    )


def test_training_dynamics(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_training_curves(bench_preset, world=tmall_artifacts.world),
        rounds=1,
        iterations=1,
    )
    save_report("training_curves", result.render())

    assert result.n_epochs >= 2
    # The adversarial similarity loss converges downward ...
    assert result.loss_s[-1] < result.loss_s[0]
    # ... the CTR losses do not blow up ...
    assert result.loss_i[-1] <= result.loss_i[0] + 0.02
    # ... and both paths end above chance.
    assert result.auc_encoder[-1] > 0.6
    assert result.auc_generator[-1] > 0.6
