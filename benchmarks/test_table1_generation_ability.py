"""Benchmark: Table I — item generation ability of ATNN.

Regenerates the paper's Table I (AUC with complete item features vs with
only item profiles, for GBDT / TNN-FC / TNN-DCN / ATNN), times the full
pipeline, and asserts the paper's qualitative shape:

* every baseline degrades when item statistics go missing;
* ATNN's generator path degrades the least (near zero) and has the best
  cold-start AUC;
* all AUCs sit in a plausible CTR band.
"""

from repro.experiments import PAPER_TABLE1, run_table1


def test_table1_generation_ability(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_table1(bench_preset, world=tmall_artifacts.world),
        rounds=1,
        iterations=1,
    )

    report = result.render() + "\n\nPaper reference (Table I):\n" + "\n".join(
        f"  {model}: profile={vals['profile_only']:.4f} "
        f"complete={vals['complete']:.4f} degradation={vals['degradation']:.2%}"
        for model, vals in PAPER_TABLE1.items()
    )
    save_report("table1", report)

    # Shape assertions (paper's qualitative claims).
    atnn = result.row("ATNN")
    for model in ("GBDT", "TNN-FC", "TNN-DCN"):
        row = result.row(model)
        assert row.degradation < 0, f"{model} should degrade without statistics"
        assert atnn.degradation > row.degradation, (
            f"ATNN must degrade less than {model}"
        )
        assert atnn.auc_profile_only > row.auc_profile_only, (
            f"ATNN cold-start AUC must beat {model}"
        )
    assert atnn.degradation > -0.05, "ATNN degradation should be near zero"
    for row in result.rows:
        assert 0.5 < row.auc_profile_only < 0.9
        assert 0.55 < row.auc_complete < 0.9
