"""Benchmark: Table III — simulated online A/B test vs human experts.

Both arms select the same number of new arrivals; the metric is the mean
time to the first five successful transactions (shorter is better).  The
paper reports 10.47 days (experts) vs 9.72 days (ATNN), a 7.16%
improvement; the assertion is the sign and a sane magnitude, not the
absolute days.
"""

from repro.experiments import PAPER_TABLE3, run_table3


def test_table3_online_abtest(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_table3(bench_preset, artifacts=tmall_artifacts),
        rounds=1,
        iterations=1,
    )

    report = result.render() + (
        f"\n\nPaper reference: expert={PAPER_TABLE3['expert_days']} days, "
        f"ATNN={PAPER_TABLE3['atnn_days']} days "
        f"({PAPER_TABLE3['improvement']:.2%} improvement)"
    )
    save_report("table3", report)

    assert result.atnn_days < result.expert_days, "ATNN must beat the expert"
    assert 0.0 < result.improvement < 0.8, (
        f"improvement {result.improvement:.2%} outside plausible band"
    )
    assert 1.0 < result.atnn_days < 31.0
