"""Benchmark: personalised recommendation quality (downstream app #1).

Evaluates per-user top-k ranking of held-out interactions for the ATNN
paths vs a non-personalised popularity heuristic and random scoring.
Shape: personalisation helps — both ATNN paths beat popularity, which
beats random, on NDCG@5.
"""

from repro.experiments import run_retrieval


def test_personalised_retrieval(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_retrieval(bench_preset, artifacts=tmall_artifacts, k=5),
        rounds=1,
        iterations=1,
    )
    save_report("retrieval", result.render())

    encoder_ndcg = result.metric("ATNN (encoder)", "ndcg")
    generator_ndcg = result.metric("ATNN (generator)", "ndcg")
    popularity_ndcg = result.metric("Popularity (hist CTR)", "ndcg")
    random_ndcg = result.metric("Random", "ndcg")

    assert encoder_ndcg > popularity_ndcg, "personalisation must beat popularity"
    assert generator_ndcg > popularity_ndcg, (
        "even the cold-start path must beat popularity"
    )
    assert popularity_ndcg > random_ndcg, "popularity must beat random"
    assert result.reports["ATNN (encoder)"]["n_users"] >= 30
