"""Shared fixtures for the benchmark harness.

Every paper table gets one benchmark module.  Heavy artifacts (trained
models over the default-preset worlds) are built once per session and
shared.  Set ``REPRO_BENCH_PRESET=smoke`` to run the whole harness in
about a minute (at reduced statistical fidelity); the default preset takes
on the order of 15 minutes and reproduces the paper's shapes.

Each benchmark renders its table to stdout and writes it under
``benchmarks/results/`` so the reproduced tables survive pytest's output
capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import build_eleme_artifacts, build_tmall_artifacts

RESULTS_DIR = Path(__file__).parent / "results"


def bench_preset_name() -> str:
    """Preset used by the harness (env-overridable)."""
    return os.environ.get("REPRO_BENCH_PRESET", "default")


@pytest.fixture(scope="session")
def bench_preset() -> str:
    return bench_preset_name()


@pytest.fixture(scope="session")
def tmall_artifacts(bench_preset):
    """One trained e-commerce stack shared by Tables II/III + complexity."""
    return build_tmall_artifacts(bench_preset, keep_individual_users=True)


@pytest.fixture(scope="session")
def eleme_artifacts(bench_preset):
    """One trained food-delivery stack shared by Tables IV/V."""
    return build_eleme_artifacts(bench_preset, adversarial=True)


@pytest.fixture(scope="session")
def save_report():
    """Callable writing a rendered table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, content: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n", encoding="utf-8")
        print(f"\n{content}\n[saved to {path}]")

    return _save
