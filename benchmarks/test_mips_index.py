"""Machine-readable MIPS retrieval benchmark (``BENCH_retrieval.json``).

Measures the partitioned IVF index against the brute-force oracle on
gaussian-mixture corpora (the shape two-tower item embeddings take):

* recall@k vs ``nprobe`` curves, per corpus size;
* build and incremental-insert throughput;
* single-query top-k latency (p50/p99) for both indexes, and the
  brute-vs-IVF speedup at the *serving* ``nprobe`` — the smallest probe
  count on the curve whose recall clears the floor.

Run from the repository root::

    PYTHONPATH=src python benchmarks/test_mips_index.py --preset smoke

The regression check compares dimensionless quantities (recall and the
speedup *ratio* measured in the same run), so a committed baseline stays
meaningful across machines::

    PYTHONPATH=src python benchmarks/test_mips_index.py --preset smoke \
        --baseline benchmarks/results/BENCH_retrieval_smoke.json \
        --max-regression 2.0 --recall-slack 0.05

The module is also collectable by pytest (``test_mips_bench_smoke``)
so the harness can exercise the smoke preset end to end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.retrieval import BruteForceIndex, IVFIndex, recall_at_k

RESULTS_DIR = Path(__file__).parent / "results"

PRESETS = {
    # Smoke: tens of seconds, for CI. Default: the committed reference
    # numbers (100k + 1M corpora), minutes on one core.
    "smoke": {
        "dim": 32,
        "sizes": [50_000],
        "clusters": 64,
        "spread": 0.2,
        "queries": 64,
        "k": 100,
        "nlist": {50_000: 128},
        "nprobe_curve": [1, 2, 4, 8, 16, 32, 128],
        "recall_floor": 0.95,
        "timing_queries": 50,
        "insert_batch": 2_000,
        "train_sample": 20_000,
    },
    "default": {
        "dim": 64,
        "sizes": [100_000, 1_000_000],
        "clusters": 256,
        "spread": 0.2,
        "queries": 256,
        "k": 100,
        "nlist": {100_000: 256, 1_000_000: 1_024},
        "nprobe_curve": [1, 2, 4, 8, 16, 32, 64, 128],
        "recall_floor": 0.95,
        "timing_queries": 200,
        "insert_batch": 10_000,
        "train_sample": 65_536,
    },
}

# Serving embeddings are float32; the engine's dtype discipline (ATN002)
# exists precisely so this benchmark measures the mode that serves.
DTYPE = np.float32


def _mixture(rng, n, dim, n_clusters, spread):
    """Gaussian-mixture vectors, generated blockwise to bound temporaries."""
    centers = rng.normal(size=(n_clusters, dim)).astype(DTYPE)
    out = np.empty((n, dim), dtype=DTYPE)
    for start in range(0, n, 131_072):
        stop = min(start + 131_072, n)
        assignment = rng.integers(0, n_clusters, size=stop - start)
        noise = rng.normal(size=(stop - start, dim)).astype(DTYPE)
        out[start:stop] = centers[assignment] + spread * noise
    return out


def _single_query_latencies(index, queries, k, repetitions):
    """Per-query wall times (seconds) over ``repetitions`` single searches."""
    index.search(queries[0], k)  # warm caches / lazy allocations
    times = np.empty(repetitions)
    for i in range(repetitions):
        query = queries[i % queries.shape[0]]
        start = time.perf_counter()
        index.search(query, k)
        times[i] = time.perf_counter() - start
    return {
        "p50_ms": float(np.percentile(times, 50) * 1e3),
        "p99_ms": float(np.percentile(times, 99) * 1e3),
        "mean_ms": float(times.mean() * 1e3),
        "repetitions": int(repetitions),
    }


def _bench_size(n, config, seed):
    rng = np.random.default_rng(seed)
    dim, k = config["dim"], config["k"]
    print(f"[mips-bench] corpus n={n} dim={dim} (generating) ...")
    data = _mixture(rng, n, dim, config["clusters"], config["spread"])
    queries = _mixture(
        rng, config["queries"], dim, config["clusters"], config["spread"]
    )

    start = time.perf_counter()
    brute = BruteForceIndex(dim, dtype=DTYPE)
    brute.add(data)
    brute_build = time.perf_counter() - start

    nlist = config["nlist"][n]
    ivf = IVFIndex(
        dim,
        nlist=nlist,
        nprobe=1,
        dtype=DTYPE,
        train_sample=config["train_sample"],
        seed=0,
    )
    start = time.perf_counter()
    ivf.rebuild(data)
    ivf_build = time.perf_counter() - start
    print(
        f"[mips-bench]   build: brute {brute_build:.2f}s, "
        f"ivf {ivf_build:.2f}s (nlist={nlist})"
    )

    reference, _ = brute.search(queries, k)
    curve = []
    for nprobe in config["nprobe_curve"]:
        if nprobe > nlist:
            continue
        ivf.nprobe = nprobe
        start = time.perf_counter()
        candidates, _ = ivf.search(queries, k)
        elapsed = time.perf_counter() - start
        recall = recall_at_k(reference, candidates)
        curve.append(
            {
                "nprobe": int(nprobe),
                "recall_at_k": float(recall),
                "batch_queries_per_second": float(queries.shape[0] / elapsed),
            }
        )
        print(
            f"[mips-bench]   nprobe={nprobe:>4}: recall@{k}={recall:.4f} "
            f"({queries.shape[0] / elapsed:,.0f} q/s batched)"
        )

    floor = config["recall_floor"]
    serving = next(
        (p for p in curve if p["recall_at_k"] >= floor), curve[-1]
    )
    serving_nprobe = serving["nprobe"]

    repetitions = config["timing_queries"]
    brute_latency = _single_query_latencies(brute, queries, k, repetitions)
    ivf.nprobe = serving_nprobe
    ivf_latency = _single_query_latencies(ivf, queries, k, repetitions)
    speedup = brute_latency["p50_ms"] / max(ivf_latency["p50_ms"], 1e-9)
    print(
        f"[mips-bench]   latency p50: brute {brute_latency['p50_ms']:.3f} ms "
        f"vs ivf {ivf_latency['p50_ms']:.3f} ms @ nprobe={serving_nprobe} "
        f"({speedup:.1f}x)"
    )

    extra = _mixture(
        rng, config["insert_batch"], dim, config["clusters"], config["spread"]
    )
    start = time.perf_counter()
    ivf.add(extra)
    insert_seconds = time.perf_counter() - start
    assert len(ivf) == n + config["insert_batch"]

    return {
        "n": int(n),
        "nlist": int(nlist),
        "serving_nprobe": int(serving_nprobe),
        "recall_at_serving_nprobe": float(serving["recall_at_k"]),
        "build": {
            "brute_seconds": float(brute_build),
            "ivf_seconds": float(ivf_build),
            "ivf_vectors_per_second": float(n / ivf_build),
        },
        "insert": {
            "batch": int(config["insert_batch"]),
            "seconds": float(insert_seconds),
            "vectors_per_second": float(
                config["insert_batch"] / insert_seconds
            ),
        },
        "recall_curve": curve,
        "latency": {
            "brute": brute_latency,
            "ivf": ivf_latency,
            "speedup_p50": float(speedup),
        },
    }


def run_suite(preset: str) -> dict:
    config = PRESETS[preset]
    print(
        f"[mips-bench] preset={preset} dim={config['dim']} "
        f"k={config['k']} sizes={config['sizes']} dtype={DTYPE.__name__}"
    )
    sizes = [
        _bench_size(n, config, seed=7 + i)
        for i, n in enumerate(config["sizes"])
    ]
    return {
        "preset": preset,
        "dtype": DTYPE.__name__,
        "k": int(config["k"]),
        "recall_floor": float(config["recall_floor"]),
        "config": {
            key: config[key]
            for key in ("dim", "clusters", "spread", "queries", "train_sample")
        },
        "sizes": sizes,
    }


def check_regression(
    report: dict,
    baseline_path: Path,
    max_regression: float,
    recall_slack: float,
) -> bool:
    """True when neither recall nor the speedup ratio has collapsed.

    Gates the *largest* corpus in the report against the same corpus in
    the baseline: recall@k at the serving nprobe may drop at most
    ``recall_slack`` absolute, and the brute-vs-IVF p50 speedup at most a
    ``max_regression`` factor (ratio comparison, robust to runner speed).
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    measured = report["sizes"][-1]
    reference = next(
        (s for s in baseline["sizes"] if s["n"] == measured["n"]), None
    )
    if reference is None:
        print(
            f"[mips-bench] FAIL: baseline has no corpus n={measured['n']}"
        )
        return False
    ok = True
    recall_floor = reference["recall_at_serving_nprobe"] - recall_slack
    if measured["recall_at_serving_nprobe"] < recall_floor:
        print(
            f"[mips-bench] FAIL: recall@{report['k']} "
            f"{measured['recall_at_serving_nprobe']:.4f} < floor "
            f"{recall_floor:.4f}"
        )
        ok = False
    speedup_floor = reference["latency"]["speedup_p50"] / max_regression
    if measured["latency"]["speedup_p50"] < speedup_floor:
        print(
            f"[mips-bench] FAIL: speedup "
            f"{measured['latency']['speedup_p50']:.2f}x < floor "
            f"{speedup_floor:.2f}x"
        )
        ok = False
    if ok:
        print(
            f"[mips-bench] regression check: recall "
            f"{measured['recall_at_serving_nprobe']:.4f} "
            f"(floor {recall_floor:.4f}), speedup "
            f"{measured['latency']['speedup_p50']:.2f}x "
            f"(floor {speedup_floor:.2f}x)"
        )
    return ok


def test_mips_bench_smoke(save_report):
    """Harness entry: the smoke preset must clear its own quality bars."""
    report = run_suite("smoke")
    largest = report["sizes"][-1]
    save_report(
        "mips_index_smoke",
        json.dumps(
            {k: largest[k] for k in ("n", "recall_at_serving_nprobe", "latency")},
            indent=2,
        ),
    )
    assert largest["recall_at_serving_nprobe"] >= report["recall_floor"]
    assert largest["latency"]["speedup_p50"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output", type=Path, default=RESULTS_DIR / "BENCH_retrieval.json"
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="Committed BENCH_retrieval*.json to check for regressions against.",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="Fail when the speedup ratio drops below baseline / this factor.",
    )
    parser.add_argument(
        "--recall-slack", type=float, default=0.05,
        help="Allowed absolute recall drop vs the baseline.",
    )
    args = parser.parse_args(argv)

    report = run_suite(args.preset)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[mips-bench] wrote {args.output}")

    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"[mips-bench] FAIL: baseline {args.baseline} not found")
            return 1
        if not check_regression(
            report, args.baseline, args.max_regression, args.recall_slack
        ):
            return 1
        print("[mips-bench] regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
