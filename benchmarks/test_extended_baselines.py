"""Benchmark: extended cold-start comparison (related-work CTR family).

Beyond the paper's four Table I rows, this evaluates LR, FM, Wide & Deep
and DeepFM under the same protocol.  Expected shape: the flat family sits
between GBDT and the two-tower models, every flat model degrades without
statistics, and ATNN still leads the cold-start column.
"""

from repro.experiments import run_extended_baselines


def test_extended_baselines(benchmark, bench_preset, tmall_artifacts, save_report):
    result = benchmark.pedantic(
        lambda: run_extended_baselines(bench_preset, world=tmall_artifacts.world),
        rounds=1,
        iterations=1,
    )
    save_report("extended_baselines", result.render())

    atnn = result.row("ATNN")
    for name in ("LR", "FM", "Wide&Deep", "DeepFM"):
        row = result.row(name)
        assert 0.5 < row.auc_complete < 0.9
        assert row.degradation < 0, f"{name} should degrade without statistics"
        assert atnn.auc_profile_only > row.auc_profile_only, (
            f"ATNN cold-start AUC must beat {name}"
        )
    # The deep/factorised members should beat plain LR on complete features.
    assert result.row("DeepFM").auc_complete > result.row("LR").auc_complete - 0.01
